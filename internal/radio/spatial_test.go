package radio

import (
	"fmt"
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/prng"
	"roborebound/internal/wire"
)

// Differential tests: a Medium with Params.SpatialIndex must be
// observationally identical to the brute-force scan — same deliveries
// in the same order, same byte counters, same loss-draw consumption —
// under randomized traffic, randomized motion, fragmentation, link
// filters, and adversarial positions (cell edges, exact decode range,
// NaN/Inf coordinates).

type posTable map[wire.RobotID]geom.Vec2

func (p posTable) lookup(id wire.RobotID) (geom.Vec2, bool) {
	v, ok := p[id]
	return v, ok
}

func deliveriesEqual(t *testing.T, round int, brute, indexed []Delivery) {
	t.Helper()
	if len(brute) != len(indexed) {
		t.Fatalf("round %d: brute delivered %d frames, indexed %d\nbrute:   %v\nindexed: %v",
			round, len(brute), len(indexed), brute, indexed)
	}
	for i := range brute {
		a, b := brute[i], indexed[i]
		if a.To != b.To || a.seq != b.seq || a.Frame.Src != b.Frame.Src ||
			a.Frame.Dst != b.Frame.Dst || a.Frame.Flags != b.Frame.Flags ||
			string(a.Frame.Payload) != string(b.Frame.Payload) {
			t.Fatalf("round %d: delivery %d diverges: brute %+v, indexed %+v", round, i, a, b)
		}
	}
}

func countersEqual(t *testing.T, ids []wire.RobotID, brute, indexed *Medium) {
	t.Helper()
	for _, id := range ids {
		a, b := *brute.Counters(id), *indexed.Counters(id)
		if a != b {
			t.Fatalf("robot %d counters diverge: brute %+v, indexed %+v", id, a, b)
		}
	}
}

// TestDeliverIndexedMatchesBruteRandom soaks both paths with random
// broadcast/unicast/spoofed traffic over randomly moving robots —
// including robots parked on cell boundaries, at exactly the decode
// range, at NaN positions, and removed from the position table — with
// a loss model consuming RNG draws and a link filter, with and without
// fragmentation. Any divergence in candidate enumeration would desync
// the loss-draw stream and cascade into every later round, so passing
// rounds compound evidence.
func TestDeliverIndexedMatchesBruteRandom(t *testing.T) {
	for _, mtu := range []int{0, 66} {
		t.Run(fmt.Sprintf("mtu=%d", mtu), func(t *testing.T) {
			rng := prng.New(0xD1FF + uint64(mtu))
			params := DefaultParams()
			params.LossRate = 0.25
			params.MTUBytes = mtu
			iparams := params
			iparams.SpatialIndex = true

			const n = 40
			r := params.RangeM()
			cell := r / 2
			ids := make([]wire.RobotID, n)
			pos := posTable{}
			randPos := func() geom.Vec2 {
				switch rng.Intn(8) {
				case 0: // exact cell-boundary multiples
					return geom.V(float64(rng.Intn(9)-4)*cell, float64(rng.Intn(9)-4)*cell)
				case 1: // exactly one decode range from the origin robot
					return geom.V(r, 0)
				case 2: // one ulp around the decode range
					return geom.V(math.Nextafter(r, rng.Range(0, 2*r)), 0)
				case 3: // non-finite
					vals := []float64{math.NaN(), math.Inf(1), rng.Range(-r, r)}
					return geom.V(vals[rng.Intn(3)], vals[rng.Intn(3)])
				default:
					return geom.V(rng.Range(-1.5*r, 1.5*r), rng.Range(-1.5*r, 1.5*r))
				}
			}
			for i := range ids {
				ids[i] = wire.RobotID(i + 1)
				pos[ids[i]] = randPos()
			}
			pos[1] = geom.V(0, 0) // anchor for the "exactly r" cases

			brute := NewMedium(params, pos.lookup, 77)
			indexed := NewMedium(iparams, pos.lookup, 77)
			filter := func(from, to wire.RobotID, f wire.Frame) bool {
				return (int(from)+int(to))%11 == 3
			}
			brute.SetLinkFilter(filter)
			indexed.SetLinkFilter(filter)

			rounds := 80
			if testing.Short() {
				rounds = 20
			}
			for round := 0; round < rounds; round++ {
				for s := rng.Intn(8); s > 0; s-- {
					from := ids[rng.Intn(n)]
					f := wire.Frame{Src: from, Dst: wire.Broadcast}
					if rng.Intn(4) == 0 {
						f.Src = ids[rng.Intn(n)] // spoofed claimed source
					}
					if rng.Intn(3) == 0 {
						f.Dst = ids[rng.Intn(n)] // unicast, sometimes to self
					}
					if rng.Intn(3) == 0 {
						f.Flags |= wire.FlagAudit
					}
					f.Payload = make([]byte, rng.Intn(200))
					for i := range f.Payload {
						f.Payload[i] = byte(rng.Intn(256))
					}
					brute.Send(from, f)
					indexed.Send(from, f)
				}
				deliveriesEqual(t, round, brute.Deliver(ids), indexed.Deliver(ids))
				// Move a few robots; occasionally drop one from the
				// position table entirely (its radio went dark).
				for moves := rng.Intn(6); moves > 0; moves-- {
					id := ids[rng.Intn(n)]
					if rng.Intn(10) == 0 {
						delete(pos, id)
					} else {
						pos[id] = randPos()
					}
				}
			}
			countersEqual(t, ids, brute, indexed)
		})
	}
}

// TestDeliverIndexedRangeBoundary pins the decode-range boundary: a
// receiver exactly RangeM away, one ulp inside, one ulp outside, on
// cell corners, and at non-finite positions — both paths must agree
// on every one, and the clear-cut cases must go the expected way.
func TestDeliverIndexedRangeBoundary(t *testing.T) {
	params := DefaultParams()
	r := params.RangeM()
	cell := r / 2
	iparams := params
	iparams.SpatialIndex = true

	cases := []struct {
		name   string
		rxPos  geom.Vec2
		expect int // 1 = must deliver, 0 = must not, -1 = just agree
	}{
		{"well inside", geom.V(0.5*r, 0), 1},
		{"exactly RangeM", geom.V(r, 0), -1},
		{"ulp inside", geom.V(math.Nextafter(r, 0), 0), -1},
		{"ulp outside", geom.V(math.Nextafter(r, 2*r), 0), -1},
		{"well outside", geom.V(1.01*r, 0), 0},
		{"cell corner", geom.V(cell, cell), 1},
		{"two cells out", geom.V(2*cell, 0), -1}, // 2*cell == r up to rounding
		{"negative cell corner", geom.V(-cell, -cell), 1},
		{"NaN position", geom.V(math.NaN(), 0), 1}, // NaN power is not < sensitivity
		{"Inf position", geom.V(math.Inf(1), 0), 0},
		{"far outside grid clamp", geom.V(1<<40, 0), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pos := posTable{1: geom.V(0, 0), 2: tc.rxPos}
			ids := []wire.RobotID{1, 2}
			brute := NewMedium(params, pos.lookup, 1)
			indexed := NewMedium(iparams, pos.lookup, 1)
			f := wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("ping")}
			brute.Send(1, f)
			indexed.Send(1, f)
			db := brute.Deliver(ids)
			di := indexed.Deliver(ids)
			deliveriesEqual(t, 0, db, di)
			switch tc.expect {
			case 1:
				if len(db) != 1 {
					t.Fatalf("expected delivery, got %v", db)
				}
			case 0:
				if len(db) != 0 {
					t.Fatalf("expected no delivery, got %v", db)
				}
			}
		})
	}
}

// TestDeliverIndexedNaNTransmitter: a transmitter at a NaN position is
// heard by everyone on the brute path (NaN received power is not below
// sensitivity); the indexed path must preserve that, not lose the
// frame to a cell-coordinate conversion.
func TestDeliverIndexedNaNTransmitter(t *testing.T) {
	params := DefaultParams()
	iparams := params
	iparams.SpatialIndex = true
	pos := posTable{
		1: geom.V(math.NaN(), math.NaN()),
		2: geom.V(0, 0),
		3: geom.V(1e9, -1e9), // far outside any plausible range
	}
	ids := []wire.RobotID{1, 2, 3}
	brute := NewMedium(params, pos.lookup, 1)
	indexed := NewMedium(iparams, pos.lookup, 1)
	f := wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("x")}
	brute.Send(1, f)
	indexed.Send(1, f)
	db := brute.Deliver(ids)
	di := indexed.Deliver(ids)
	deliveriesEqual(t, 0, db, di)
	if len(db) != 2 {
		t.Fatalf("NaN transmitter should reach both receivers on the brute path, got %v", db)
	}
}

// TestSendSteadyStateAllocations pins the satellite fix: Send measures
// frame sizes arithmetically (Frame.EncodedSize) instead of encoding
// every frame, so the unfragmented steady state allocates nothing per
// Send. The bound is per 1000 sends plus one drain, so even the
// drain's own bookkeeping stays visibly tiny; the old
// Encode-to-measure path costs ≥1 allocation per Send (≥1000 here).
func TestSendSteadyStateAllocations(t *testing.T) {
	pos := func(wire.RobotID) (geom.Vec2, bool) { return geom.V(0, 0), true }
	m := NewMedium(DefaultParams(), pos, 1)
	f := wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: make([]byte, 64)}
	for i := 0; i < 4096; i++ { // grow the queue's backing array
		m.Send(1, f)
	}
	m.Deliver(nil)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			m.Send(1, f)
		}
		m.Deliver(nil)
	})
	if allocs > 8 {
		t.Fatalf("1000 Sends + drain allocate %.0f times, want ≤8 (is Send encoding frames again?)", allocs)
	}
}

func BenchmarkSend(b *testing.B) {
	pos := func(wire.RobotID) (geom.Vec2, bool) { return geom.V(0, 0), true }
	m := NewMedium(DefaultParams(), pos, 1)
	f := wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: make([]byte, 64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(1, f)
		if i%1024 == 1023 {
			m.Deliver(nil)
		}
	}
}

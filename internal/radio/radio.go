// Package radio simulates the ad-hoc wireless medium an MRS
// communicates over. It replaces the paper's ns-3 setup (§4) with the
// same physical model — log-distance path loss with the ESP32+2 dBi
// reference point (36.05 dB at 1 m, exponent 3) — plus a link budget
// that turns received power into deliverability, deterministic
// delivery ordering, optional packet loss, and the per-robot byte
// accounting behind Figs. 6–7.
package radio

import (
	"fmt"
	"math"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/prng"
	"roborebound/internal/wire"
)

// Params models the link. Defaults reproduce the paper's setup.
type Params struct {
	// RefLossDB is the path loss at the reference distance (36.05 dB
	// at 1 m for the ESP32 + 2 dBi antenna, §4).
	RefLossDB float64
	// RefDistM is the reference distance in meters (1 m).
	RefDistM float64
	// PathLossExp is the propagation exponent (3, the ns-3 default the
	// paper uses).
	PathLossExp float64
	// TxPowerDBm is the transmit power (20 dBm, typical ESP32).
	TxPowerDBm float64
	// RxSensitivityDBm is the weakest decodable signal.
	RxSensitivityDBm float64
	// LossRate is an optional uniform packet-loss probability applied
	// per (frame, receiver) pair; 0 disables. It is shorthand for
	// installing UniformLoss{LossRate} as the medium's LossModel; a
	// model installed with SetLossModel takes precedence.
	LossRate float64
	// MTUBytes caps the encoded size of one on-air frame; larger
	// frames are fragmented and reassembled (Appendix B: the RFM69's
	// 66-byte FIFO). 0 disables fragmentation. Loss applies per
	// fragment, so large transfers suffer compounded loss — as they
	// would in reality.
	MTUBytes int
}

// DefaultParams returns the paper's link model. The resulting
// communication radius is ≈199 m: a 25-robot, 4 m-spaced flock is
// fully connected, while an 18×18 grid at 64 m spacing is far wider
// than one transmission range — both properties the Fig. 7 narrative
// depends on.
func DefaultParams() Params {
	return Params{
		RefLossDB:        36.05,
		RefDistM:         1,
		PathLossExp:      3,
		TxPowerDBm:       20,
		RxSensitivityDBm: -85,
	}
}

// PathLossDB returns the path loss at distance d meters.
func (p Params) PathLossDB(d float64) float64 {
	if d < p.RefDistM {
		d = p.RefDistM
	}
	return p.RefLossDB + 10*p.PathLossExp*math.Log10(d/p.RefDistM)
}

// RxPowerDBm returns the received power at distance d.
func (p Params) RxPowerDBm(d float64) float64 {
	return p.TxPowerDBm - p.PathLossDB(d)
}

// RangeM returns the maximum distance at which frames are decodable.
func (p Params) RangeM() float64 {
	budget := p.TxPowerDBm - p.RxSensitivityDBm - p.RefLossDB
	return p.RefDistM * math.Pow(10, budget/(10*p.PathLossExp))
}

// Position reports a robot's true position; the simulation engine
// provides it from the physics world.
type Position func(id wire.RobotID) (geom.Vec2, bool)

// LossModel decides whether one candidate (frame, receiver) delivery
// is dropped. draw is the medium's deterministic per-candidate RNG
// sample in [0,1); a model must be a pure function of its inputs so a
// run stays bit-reproducible. Fault injection installs time-varying
// models that close over the engine clock.
type LossModel interface {
	Drop(from, to wire.RobotID, draw float64) bool
}

// UniformLoss drops every candidate independently with probability
// Rate — the model Params.LossRate is shorthand for.
type UniformLoss struct{ Rate float64 }

// Drop implements LossModel.
func (u UniformLoss) Drop(_, _ wire.RobotID, draw float64) bool { return draw < u.Rate }

// LinkFilter blocks candidate deliveries outright (true = blocked).
// Unlike a LossModel it consumes no RNG draw, so installing one never
// perturbs the loss model's draw stream for the frames it lets
// through. Fault injection uses it for partitions and withheld
// responses. It runs after the range check and before the loss draw.
type LinkFilter func(from, to wire.RobotID, f wire.Frame) bool

// TxDelay returns how many extra delivery rounds to hold a frame in
// the air before it becomes deliverable (0 = normal next-round
// delivery). Held frames keep their transmit sequence number, so the
// (receiver, seq) delivery contract still holds when they land. Fault
// injection uses it to delay audit/token responses.
type TxDelay func(from wire.RobotID, f wire.Frame) wire.Tick

// ByteCounters accumulates the traffic accounting for one robot,
// split into application vs audit traffic (the paper's Fig. 6 plots
// exactly this breakdown).
type ByteCounters struct {
	TxApp, TxAudit uint64
	RxApp, RxAudit uint64
	TxFrames       uint64
	RxFrames       uint64
	Dropped        uint64 // frames lost to the loss model or blocked by a link filter
}

// Total returns all bytes sent plus received.
func (b *ByteCounters) Total() uint64 { return b.TxApp + b.TxAudit + b.RxApp + b.RxAudit }

type queuedFrame struct {
	frame   wire.Frame
	from    wire.RobotID // physical transmitter (≠ claimed frame.Src for spoofers)
	seq     uint64
	size    int       // encoded length, measured once at Send time
	readyAt wire.Tick // earliest delivery round (TxDelay holds frames past this)
}

// Medium is the shared wireless channel. Frames transmitted during
// tick N are delivered at the start of tick N+1, in deterministic
// (receiver ID, then transmit sequence) order.
type Medium struct {
	params Params
	pos    Position
	rng    *prng.Source

	queue    []queuedFrame
	seq      uint64
	counters map[wire.RobotID]*ByteCounters

	// Optional fault hooks (see SetLossModel / SetLinkFilter /
	// SetTxDelay). loss defaults to UniformLoss when Params.LossRate
	// is set; filter and delay default to nil (inactive).
	loss   LossModel
	filter LinkFilter
	delay  TxDelay

	// Fragmentation state (only used when params.MTUBytes > 0).
	nextMsgID    map[wire.RobotID]uint16
	reassemblers map[wire.RobotID]*Reassembler
	deliverTick  wire.Tick // logical clock for reassembly expiry

	// Observability (see SetObs). trace receives one event per frame
	// tx/rx/drop; metrics mirrors the byte counters as gauge funcs.
	trace   obs.Tracer
	metrics *obs.Registry
}

// NewMedium creates a medium. seed drives only the optional loss
// model; with LossRate 0 the medium is loss-free and the seed inert.
func NewMedium(params Params, pos Position, seed uint64) *Medium {
	m := &Medium{
		params:       params,
		pos:          pos,
		rng:          prng.New(seed),
		counters:     make(map[wire.RobotID]*ByteCounters),
		nextMsgID:    make(map[wire.RobotID]uint16),
		reassemblers: make(map[wire.RobotID]*Reassembler),
	}
	if params.LossRate > 0 {
		m.loss = UniformLoss{Rate: params.LossRate}
	}
	return m
}

// SetLossModel replaces the loss model. nil disables loss entirely,
// including the Params.LossRate shorthand. A non-nil model consumes
// one RNG draw per candidate (frame, receiver) pair even when it
// never drops, so swapping models changes which draws later frames
// see — determinism is per (params, seed, model), not across models.
func (m *Medium) SetLossModel(l LossModel) { m.loss = l }

// SetLinkFilter installs a delivery filter (nil disables).
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// SetTxDelay installs a transmit-delay hook (nil disables).
func (m *Medium) SetTxDelay(d TxDelay) { m.delay = d }

// Params returns the link parameters.
func (m *Medium) Params() Params { return m.params }

// SetObs attaches the observability layer: tr (nil = disabled)
// receives one tick-stamped event per frame transmitted, received,
// or dropped; reg (nil = disabled) mirrors each robot's byte
// counters as radio.robot.<id>.* gauges read at snapshot time, so
// the accounting is never double-written. Tracing is observation
// only — the frame schedule, loss draws, and delivery order are
// untouched.
func (m *Medium) SetObs(tr obs.Tracer, reg *obs.Registry) {
	m.trace = tr
	m.metrics = reg
	// Robots that already have counters (registered before SetObs)
	// get their gauges now; later robots register on first use.
	ids := make([]wire.RobotID, 0, len(m.counters))
	for id := range m.counters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.registerCounterGauges(id, m.counters[id])
	}
}

// registerCounterGauges mirrors one robot's byte counters into the
// metrics registry (no-op when metrics are disabled).
func (m *Medium) registerCounterGauges(id wire.RobotID, c *ByteCounters) {
	if m.metrics == nil {
		return
	}
	prefix := fmt.Sprintf("radio.robot.%d.", id)
	m.metrics.RegisterGaugeFunc(prefix+"tx_app_bytes", func() float64 { return float64(c.TxApp) })
	m.metrics.RegisterGaugeFunc(prefix+"tx_audit_bytes", func() float64 { return float64(c.TxAudit) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_app_bytes", func() float64 { return float64(c.RxApp) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_audit_bytes", func() float64 { return float64(c.RxAudit) })
	m.metrics.RegisterGaugeFunc(prefix+"tx_frames", func() float64 { return float64(c.TxFrames) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_frames", func() float64 { return float64(c.RxFrames) })
	m.metrics.RegisterGaugeFunc(prefix+"dropped_frames", func() float64 { return float64(c.Dropped) })
}

// Counters returns the byte counters for a robot, creating them on
// first use.
func (m *Medium) Counters(id wire.RobotID) *ByteCounters {
	c := m.counters[id]
	if c == nil {
		c = &ByteCounters{}
		m.counters[id] = c
		m.registerCounterGauges(id, c)
	}
	return c
}

// Send enqueues a frame transmitted by `from` for delivery next tick,
// fragmenting it first when it exceeds the radio MTU. The physical
// transmitter is recorded separately from the frame's claimed source:
// radios can spoof header fields but not their own antenna position.
func (m *Medium) Send(from wire.RobotID, f wire.Frame) {
	frames := []wire.Frame{f}
	if m.params.MTUBytes > 0 {
		msgID := m.nextMsgID[from]
		m.nextMsgID[from]++
		frames = FragmentFrame(f, m.params.MTUBytes, msgID)
	}
	c := m.Counters(from)
	for _, fr := range frames {
		size := len(fr.Encode())
		c.TxFrames++
		if fr.IsAudit() {
			c.TxAudit += uint64(size)
		} else {
			c.TxApp += uint64(size)
		}
		if m.trace != nil {
			m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: from,
				Kind: obs.EvFrameTx, Peer: fr.Dst, Value: int64(size)})
		}
		q := queuedFrame{frame: fr, from: from, seq: m.seq, size: size, readyAt: m.deliverTick}
		if m.delay != nil {
			q.readyAt += m.delay(from, fr)
		}
		m.queue = append(m.queue, q)
		m.seq++
	}
}

// Delivery is one frame arriving at one robot.
type Delivery struct {
	To    wire.RobotID
	Frame wire.Frame

	seq uint64 // transmit sequence, for the (receiver, queue-order) sort
}

// Deliver computes which robots receive each queued frame and clears
// the queue. Receivers are all robots within decode range of the
// transmitter's position, except the transmitter itself; unicast
// frames are radio broadcasts too (anyone in range hears them), but
// only the addressee is returned — the a-node's address filter drops
// the rest, and the paper's byte accounting likewise counts only
// decoded-and-kept traffic.
//
// Deliveries are returned in (receiver ID, then transmit queue order)
// — the ordering the simulation engine documents and that each
// c-node's log therefore records. Per receiver this equals send
// order; across receivers it is receiver-major, so every robot's
// inbound frame sequence is independent of how other receivers
// interleave.
func (m *Medium) Deliver(ids []wire.RobotID) []Delivery {
	if len(m.queue) == 0 {
		return nil
	}
	sorted := append([]wire.RobotID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var out []Delivery
	held := m.queue[:0]
	for _, q := range m.queue {
		if q.readyAt > m.deliverTick {
			held = append(held, q) // still in the air (TxDelay); retry next round
			continue
		}
		src, ok := m.pos(q.from)
		if !ok {
			continue
		}
		for _, id := range sorted {
			if id == q.from {
				continue
			}
			if q.frame.Dst != wire.Broadcast && q.frame.Dst != id {
				continue
			}
			dst, ok := m.pos(id)
			if !ok {
				continue
			}
			if m.params.RxPowerDBm(src.Dist(dst)) < m.params.RxSensitivityDBm {
				continue
			}
			if m.filter != nil && m.filter(q.from, id, q.frame) {
				m.Counters(id).Dropped++
				if m.trace != nil {
					m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
						Kind: obs.EvFrameDropped, Peer: q.from,
						Cause: obs.CauseLinkFilter, Value: int64(q.size)})
				}
				continue
			}
			if m.loss != nil && m.loss.Drop(q.from, id, m.rng.Float64()) {
				m.Counters(id).Dropped++
				if m.trace != nil {
					m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
						Kind: obs.EvFrameDropped, Peer: q.from,
						Cause: obs.CauseLoss, Value: int64(q.size)})
				}
				continue
			}
			c := m.Counters(id)
			c.RxFrames++
			if q.frame.IsAudit() {
				c.RxAudit += uint64(q.size)
			} else {
				c.RxApp += uint64(q.size)
			}
			if m.trace != nil {
				m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
					Kind: obs.EvFrameRx, Peer: q.from, Value: int64(q.size)})
			}
			frame := q.frame
			if m.params.MTUBytes > 0 {
				reasm := m.reassemblers[id]
				if reasm == nil {
					// Generous expiry: fragments of one frame all
					// arrive in the same delivery round, so a handful
					// of rounds is plenty.
					reasm = NewReassembler(16)
					m.reassemblers[id] = reasm
				}
				complete, ok := reasm.Add(q.from, frame, m.deliverTick)
				if !ok {
					continue // waiting for more fragments (or junk)
				}
				frame = complete
			}
			out = append(out, Delivery{To: id, Frame: frame, seq: q.seq})
		}
	}
	// The loop above walks frame-major (preserving the loss model's
	// per-(frame, receiver) RNG draw order across versions); the
	// documented contract is receiver-major, so sort. (To, seq) pairs
	// are unique — one frame reaches one receiver at most once.
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].seq < out[j].seq
	})
	m.queue = held
	m.deliverTick++
	if m.params.MTUBytes > 0 && m.deliverTick%32 == 0 {
		// Expire in ID order: each reassembler is independent today,
		// but replay determinism must not hinge on that staying true.
		ids := make([]wire.RobotID, 0, len(m.reassemblers))
		for id := range m.reassemblers {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			m.reassemblers[id].Expire(m.deliverTick)
		}
	}
	return out
}

// InRange reports whether two robots can currently hear each other.
func (m *Medium) InRange(a, b wire.RobotID) bool {
	pa, oka := m.pos(a)
	pb, okb := m.pos(b)
	return oka && okb && m.params.RxPowerDBm(pa.Dist(pb)) >= m.params.RxSensitivityDBm
}

// NeighborsOf returns the ids (from the given set) within range of id,
// sorted ascending.
func (m *Medium) NeighborsOf(id wire.RobotID, ids []wire.RobotID) []wire.RobotID {
	var out []wire.RobotID
	for _, other := range ids {
		if other != id && m.InRange(id, other) {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

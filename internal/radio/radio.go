// Package radio simulates the ad-hoc wireless medium an MRS
// communicates over. It replaces the paper's ns-3 setup (§4) with the
// same physical model — log-distance path loss with the ESP32+2 dBi
// reference point (36.05 dB at 1 m, exponent 3) — plus a link budget
// that turns received power into deliverability, deterministic
// delivery ordering, optional packet loss, and the per-robot byte
// accounting behind Figs. 6–7.
package radio

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/geom/spatial"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/prng"
	"roborebound/internal/wire"
)

// Params models the link. Defaults reproduce the paper's setup.
type Params struct {
	// RefLossDB is the path loss at the reference distance (36.05 dB
	// at 1 m for the ESP32 + 2 dBi antenna, §4).
	RefLossDB float64
	// RefDistM is the reference distance in meters (1 m).
	RefDistM float64
	// PathLossExp is the propagation exponent (3, the ns-3 default the
	// paper uses).
	PathLossExp float64
	// TxPowerDBm is the transmit power (20 dBm, typical ESP32).
	TxPowerDBm float64
	// RxSensitivityDBm is the weakest decodable signal.
	RxSensitivityDBm float64
	// LossRate is an optional uniform packet-loss probability applied
	// per (frame, receiver) pair; 0 disables. It is shorthand for
	// installing UniformLoss{LossRate} as the medium's LossModel; a
	// model installed with SetLossModel takes precedence.
	LossRate float64
	// MTUBytes caps the encoded size of one on-air frame; larger
	// frames are fragmented and reassembled (Appendix B: the RFM69's
	// 66-byte FIFO). 0 disables fragmentation. Loss applies per
	// fragment, so large transfers suffer compounded loss — as they
	// would in reality.
	MTUBytes int
	// SpatialIndex routes Deliver's receiver scan through a uniform
	// grid over robot positions instead of testing every robot per
	// frame. Purely an accelerator: delivery order, loss draws, byte
	// accounting, and traces are byte-identical either way (the
	// differential tests at the repository root prove it); false keeps
	// the brute-force scan.
	SpatialIndex bool
}

// DefaultParams returns the paper's link model. The resulting
// communication radius is ≈199 m: a 25-robot, 4 m-spaced flock is
// fully connected, while an 18×18 grid at 64 m spacing is far wider
// than one transmission range — both properties the Fig. 7 narrative
// depends on.
func DefaultParams() Params {
	return Params{
		RefLossDB:        36.05,
		RefDistM:         1,
		PathLossExp:      3,
		TxPowerDBm:       20,
		RxSensitivityDBm: -85,
	}
}

// PathLossDB returns the path loss at distance d meters.
func (p Params) PathLossDB(d float64) float64 {
	if d < p.RefDistM {
		d = p.RefDistM
	}
	return p.RefLossDB + 10*p.PathLossExp*math.Log10(d/p.RefDistM)
}

// RxPowerDBm returns the received power at distance d.
func (p Params) RxPowerDBm(d float64) float64 {
	return p.TxPowerDBm - p.PathLossDB(d)
}

// RangeM returns the maximum distance at which frames are decodable.
func (p Params) RangeM() float64 {
	budget := p.TxPowerDBm - p.RxSensitivityDBm - p.RefLossDB
	return p.RefDistM * math.Pow(10, budget/(10*p.PathLossExp))
}

// Position reports a robot's true position; the simulation engine
// provides it from the physics world.
type Position func(id wire.RobotID) (geom.Vec2, bool)

// LossModel decides whether one candidate (frame, receiver) delivery
// is dropped. draw is the medium's deterministic per-candidate RNG
// sample in [0,1); a model must be a pure function of its inputs so a
// run stays bit-reproducible. Fault injection installs time-varying
// models that close over the engine clock.
type LossModel interface {
	Drop(from, to wire.RobotID, draw float64) bool
}

// UniformLoss drops every candidate independently with probability
// Rate — the model Params.LossRate is shorthand for.
type UniformLoss struct{ Rate float64 }

// Drop implements LossModel.
func (u UniformLoss) Drop(_, _ wire.RobotID, draw float64) bool { return draw < u.Rate }

// LinkFilter blocks candidate deliveries outright (true = blocked).
// Unlike a LossModel it consumes no RNG draw, so installing one never
// perturbs the loss model's draw stream for the frames it lets
// through. Fault injection uses it for partitions and withheld
// responses. It runs after the range check and before the loss draw.
type LinkFilter func(from, to wire.RobotID, f wire.Frame) bool

// TxDelay returns how many extra delivery rounds to hold a frame in
// the air before it becomes deliverable (0 = normal next-round
// delivery). Held frames keep their transmit sequence number, so the
// (receiver, seq) delivery contract still holds when they land. Fault
// injection uses it to delay audit/token responses.
type TxDelay func(from wire.RobotID, f wire.Frame) wire.Tick

// ByteCounters accumulates the traffic accounting for one robot,
// split into application vs audit traffic (the paper's Fig. 6 plots
// exactly this breakdown).
type ByteCounters struct {
	TxApp, TxAudit uint64
	RxApp, RxAudit uint64
	TxFrames       uint64
	RxFrames       uint64
	Dropped        uint64 // frames lost to the loss model or blocked by a link filter
}

// Total returns all bytes sent plus received.
func (b *ByteCounters) Total() uint64 { return b.TxApp + b.TxAudit + b.RxApp + b.RxAudit }

type queuedFrame struct {
	frame   wire.Frame
	from    wire.RobotID // physical transmitter (≠ claimed frame.Src for spoofers)
	seq     uint64
	size    int       // encoded length, measured once at Send time
	readyAt wire.Tick // earliest delivery round (TxDelay holds frames past this)
}

// Medium is the shared wireless channel. Frames transmitted during
// tick N are delivered at the start of tick N+1, in deterministic
// (receiver ID, then transmit sequence) order.
type Medium struct {
	params Params   //rebound:snapshot-skip immutable config, supplied at rebuild
	pos    Position //rebound:snapshot-skip position callback wiring, reattached at rebuild
	rng    *prng.Source

	queue    []queuedFrame
	seq      uint64
	counters map[wire.RobotID]*ByteCounters

	// Per-sender transmit state, behind a pointer so staged sends from
	// different senders never write the shared map (see BeginStaged).
	senders map[wire.RobotID]*senderState
	// staged diverts Send into per-sender outboxes; stagedIDs is the
	// ascending roster FlushStaged merges in.
	staged    bool
	stagedIDs []wire.RobotID //rebound:snapshot-skip per-round roster, re-armed by BeginStaged

	// Optional fault hooks (see SetLossModel / SetLinkFilter /
	// SetTxDelay). loss defaults to UniformLoss when Params.LossRate
	// is set; filter and delay default to nil (inactive).
	loss   LossModel  //rebound:snapshot-skip fault-hook wiring, reattached at rebuild
	filter LinkFilter //rebound:snapshot-skip fault-hook wiring, reattached at rebuild
	delay  TxDelay    //rebound:snapshot-skip fault-hook wiring, reattached at rebuild

	// Fragmentation state (only used when params.MTUBytes > 0).
	reassemblers map[wire.RobotID]*Reassembler
	deliverTick  wire.Tick // logical clock for reassembly expiry

	// Observability (see SetObs). trace receives one event per frame
	// tx/rx/drop; metrics mirrors the byte counters as gauge funcs.
	trace   obs.Tracer //rebound:snapshot-skip observer wiring, reattached at rebuild
	metrics *obs.Registry

	// perf times the per-round spatial-grid rebuild (nil = disabled).
	perf *perf.PhaseTimer //rebound:snapshot-skip observation-only wall-clock plane, reattached at rebuild

	// Spatial-index state (params.SpatialIndex): the grid is rebuilt
	// once per Deliver round from the same positions the brute path
	// reads; the buffers amortize to zero allocations per round.
	grid    spatial.Grid     //rebound:snapshot-skip rebuilt from positions every Deliver round
	gridBuf []spatial.Member //rebound:snapshot-skip per-round scratch

	// Deliver-round scratch, reused across rounds on both paths:
	// sortedBuf holds the deduped ascending roster; ctrBuf caches each
	// receiver's counters by roster rank (one map lookup per robot per
	// round instead of one per delivery); outBuf collects deliveries in
	// walk order and resultBuf receives them in sorted order (resultBuf
	// backs Deliver's return value — see the ownership note there);
	// countBuf is the counting sort's per-rank histogram.
	sortedBuf []wire.RobotID  //rebound:snapshot-skip per-round scratch
	ctrBuf    []*ByteCounters //rebound:snapshot-skip per-round scratch
	outBuf    []Delivery      //rebound:snapshot-skip per-round scratch
	resultBuf []Delivery      //rebound:snapshot-skip per-round scratch
	countBuf  []int32         //rebound:snapshot-skip per-round scratch
}

// NewMedium creates a medium. seed drives only the optional loss
// model; with LossRate 0 the medium is loss-free and the seed inert.
func NewMedium(params Params, pos Position, seed uint64) *Medium {
	m := &Medium{
		params:       params,
		pos:          pos,
		rng:          prng.New(seed),
		counters:     make(map[wire.RobotID]*ByteCounters),
		senders:      make(map[wire.RobotID]*senderState),
		reassemblers: make(map[wire.RobotID]*Reassembler),
	}
	if params.LossRate > 0 {
		m.loss = UniformLoss{Rate: params.LossRate}
	}
	return m
}

// SetLossModel replaces the loss model. nil disables loss entirely,
// including the Params.LossRate shorthand. A non-nil model consumes
// one RNG draw per candidate (frame, receiver) pair even when it
// never drops, so swapping models changes which draws later frames
// see — determinism is per (params, seed, model), not across models.
func (m *Medium) SetLossModel(l LossModel) { m.loss = l }

// SetLinkFilter installs a delivery filter (nil disables).
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// SetTxDelay installs a transmit-delay hook (nil disables).
func (m *Medium) SetTxDelay(d TxDelay) { m.delay = d }

// Params returns the link parameters.
func (m *Medium) Params() Params { return m.params }

// SetObs attaches the observability layer: tr (nil = disabled)
// receives one tick-stamped event per frame transmitted, received,
// or dropped; reg (nil = disabled) mirrors each robot's byte
// counters as radio.robot.<id>.* gauges read at snapshot time, so
// the accounting is never double-written. Tracing is observation
// only — the frame schedule, loss draws, and delivery order are
// untouched.
func (m *Medium) SetObs(tr obs.Tracer, reg *obs.Registry) {
	m.trace = tr
	m.metrics = reg
	// Robots that already have counters (registered before SetObs)
	// get their gauges now; later robots register on first use.
	ids := make([]wire.RobotID, 0, len(m.counters))
	for id := range m.counters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.registerCounterGauges(id, m.counters[id])
	}
}

// SetPerf attaches the wall-clock phase timer (nil = disabled); the
// medium times its per-round spatial-grid rebuild with it. Like the
// tracer, observation-only.
func (m *Medium) SetPerf(t *perf.PhaseTimer) { m.perf = t }

// registerCounterGauges mirrors one robot's byte counters into the
// metrics registry (no-op when metrics are disabled).
func (m *Medium) registerCounterGauges(id wire.RobotID, c *ByteCounters) {
	if m.metrics == nil {
		return
	}
	prefix := fmt.Sprintf("radio.robot.%d.", id)
	m.metrics.RegisterGaugeFunc(prefix+"tx_app_bytes", func() float64 { return float64(c.TxApp) })
	m.metrics.RegisterGaugeFunc(prefix+"tx_audit_bytes", func() float64 { return float64(c.TxAudit) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_app_bytes", func() float64 { return float64(c.RxApp) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_audit_bytes", func() float64 { return float64(c.RxAudit) })
	m.metrics.RegisterGaugeFunc(prefix+"tx_frames", func() float64 { return float64(c.TxFrames) })
	m.metrics.RegisterGaugeFunc(prefix+"rx_frames", func() float64 { return float64(c.RxFrames) })
	m.metrics.RegisterGaugeFunc(prefix+"dropped_frames", func() float64 { return float64(c.Dropped) })
}

// Counters returns the byte counters for a robot, creating them on
// first use.
//
//rebound:coldpath first-touch registration, once per robot per run
func (m *Medium) Counters(id wire.RobotID) *ByteCounters {
	c := m.counters[id]
	if c == nil {
		c = &ByteCounters{}
		m.counters[id] = c
		m.registerCounterGauges(id, c)
	}
	return c
}

// senderState is one transmitter's radio-side state: its fragment
// message-ID counter and, in staged mode, its private outbox. It sits
// behind a pointer so a staged Send mutates only the sender's own
// struct, never the shared map.
type senderState struct {
	nextMsgID uint16
	outbox    []queuedFrame // staged frames, seq unassigned until FlushStaged
}

// sender returns the per-sender state, creating it on first use.
//
//rebound:coldpath first-touch registration, once per sender per run
func (m *Medium) sender(id wire.RobotID) *senderState {
	s := m.senders[id]
	if s == nil {
		s = &senderState{}
		m.senders[id] = s
	}
	return s
}

// Send enqueues a frame transmitted by `from` for delivery next tick,
// fragmenting it first when it exceeds the radio MTU. The physical
// transmitter is recorded separately from the frame's claimed source:
// radios can spoof header fields but not their own antenna position.
//
// In staged mode (between BeginStaged and FlushStaged) the frame parks
// in the sender's private outbox instead of the shared queue; distinct
// registered senders may then Send concurrently.
//
//rebound:hotpath per-frame transmit path; unfragmented steady state allocates nothing
func (m *Medium) Send(from wire.RobotID, f wire.Frame) {
	var c *ByteCounters
	var s *senderState
	if m.staged {
		// No map inserts here: other senders may be inside Send right
		// now. BeginStaged pre-registers every legal sender.
		if c, s = m.counters[from], m.senders[from]; c == nil || s == nil {
			//rebound:alloc formatting a panic on a dead robot is free
			panic(fmt.Sprintf("radio: staged Send from unregistered sender %d", from))
		}
	} else {
		c, s = m.Counters(from), m.sender(from)
	}
	if m.params.MTUBytes > 0 {
		msgID := s.nextMsgID
		s.nextMsgID++
		for _, fr := range FragmentFrame(f, m.params.MTUBytes, msgID) {
			m.enqueue(c, s, from, fr)
		}
		return
	}
	m.enqueue(c, s, from, f)
}

// enqueue accounts for and queues one on-air frame. Sizes come from
// Frame.EncodedSize — arithmetic, not a measurement Encode — so the
// unfragmented Send path allocates nothing at steady state (pinned by
// TestSendSteadyStateAllocations). Everything it touches is either
// read-only during a staged round (params, delay hook, deliverTick) or
// owned by the sender (counters, outbox) — except the shared queue and
// seq counter, which staged sends defer to FlushStaged. The trace emit
// is shard-safe because the event carries the sender's own ID and the
// staged tracer partitions by it (obs.ShardCapture).
//
//rebound:hotpath inner loop of every transmit
func (m *Medium) enqueue(c *ByteCounters, s *senderState, from wire.RobotID, fr wire.Frame) {
	size := fr.EncodedSize()
	c.TxFrames++
	if fr.IsAudit() {
		c.TxAudit += uint64(size)
	} else {
		c.TxApp += uint64(size)
	}
	if m.trace != nil {
		m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: from,
			Kind: obs.EvFrameTx, Peer: fr.Dst, Value: int64(size)})
	}
	q := queuedFrame{frame: fr, from: from, size: size, readyAt: m.deliverTick}
	if m.delay != nil {
		q.readyAt += m.delay(from, fr)
	}
	if m.staged {
		s.outbox = append(s.outbox, q)
		return
	}
	q.seq = m.seq
	m.seq++
	m.queue = append(m.queue, q)
}

// BeginStaged enters staged-send mode for one tick round. ids is the
// set of senders allowed to transmit this round; their counters and
// sender states (and metrics gauges) are created NOW, in ascending ID
// order, so the concurrent phase performs no map writes. After this
// call, Sends from distinct senders may run on different goroutines.
//
// Staging exists for the sharded tick phase: a serial tick loop that
// visits actors in ascending ID order assigns transmit sequence
// numbers in exactly the order FlushStaged does, so a staged round is
// byte-identical to a serial one (the swarm differential tests pin
// this, fingerprints, traces, and metrics included).
func (m *Medium) BeginStaged(ids []wire.RobotID) {
	if m.staged {
		panic("radio: BeginStaged while already staged")
	}
	m.stagedIDs = append(m.stagedIDs[:0], ids...)
	slices.Sort(m.stagedIDs)
	m.stagedIDs = slices.Compact(m.stagedIDs)
	for _, id := range m.stagedIDs {
		m.Counters(id)
		m.sender(id)
	}
	m.staged = true
}

// FlushStaged leaves staged mode, draining every outbox into the
// shared queue in ascending sender ID and assigning transmit sequence
// numbers in that order. Per sender, outbox order is that sender's
// send order — together giving the exact seq assignment of an
// ascending-ID serial tick loop.
func (m *Medium) FlushStaged() {
	if !m.staged {
		panic("radio: FlushStaged without BeginStaged")
	}
	m.staged = false
	for _, id := range m.stagedIDs {
		s := m.senders[id]
		for i := range s.outbox {
			q := s.outbox[i]
			q.seq = m.seq
			m.seq++
			m.queue = append(m.queue, q)
		}
		s.outbox = s.outbox[:0]
	}
}

// rangeSlack pads the spatial query radius past Params.RangeM, in
// meters. The grid prefilters on squared distance while the delivery
// pipeline decides on the log-domain power check; near the range
// boundary the two computations round differently by at most ~1e-12 m,
// so a micrometer of slack guarantees the candidate set is a strict
// superset of the decodable set. The pipeline's own power check —
// identical code on both paths — then makes the final call, so the
// slack can only add candidates that are rejected exactly as the brute
// scan would reject them.
const rangeSlack = 1e-6

// counterAt returns the receiver's byte counters via the per-round
// rank cache, creating them through Counters on first touch — so
// counter (and gauge) creation order stays exactly the order the
// delivery pipeline first touches each robot, identical on both paths.
func (m *Medium) counterAt(rank int32, id wire.RobotID) *ByteCounters {
	if c := m.ctrBuf[rank]; c != nil {
		return c
	}
	c := m.Counters(id)
	m.ctrBuf[rank] = c
	return c
}

// deliverTo runs the per-candidate delivery pipeline for one queued
// frame and one potential receiver at position dst: power check, link
// filter, loss draw, byte accounting, reassembly. rank is the
// receiver's index in the round's sorted roster. Both the brute scan
// and the spatial-index path funnel through it, with identical check
// order, so the two paths are distinguishable only by how many
// out-of-range robots they never looked at.
//
//rebound:hotpath runs once per (frame, candidate receiver) per round
func (m *Medium) deliverTo(q queuedFrame, rank int32, id wire.RobotID, src, dst geom.Vec2, out []Delivery) []Delivery {
	if m.params.RxPowerDBm(src.Dist(dst)) < m.params.RxSensitivityDBm {
		return out
	}
	if m.filter != nil && m.filter(q.from, id, q.frame) {
		m.counterAt(rank, id).Dropped++
		if m.trace != nil {
			m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
				Kind: obs.EvFrameDropped, Peer: q.from,
				Cause: obs.CauseLinkFilter, Value: int64(q.size)})
		}
		return out
	}
	if m.loss != nil && m.loss.Drop(q.from, id, m.rng.Float64()) {
		m.counterAt(rank, id).Dropped++
		if m.trace != nil {
			m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
				Kind: obs.EvFrameDropped, Peer: q.from,
				Cause: obs.CauseLoss, Value: int64(q.size)})
		}
		return out
	}
	c := m.counterAt(rank, id)
	c.RxFrames++
	if q.frame.IsAudit() {
		c.RxAudit += uint64(q.size)
	} else {
		c.RxApp += uint64(q.size)
	}
	if m.trace != nil {
		m.trace.Emit(obs.Event{Tick: m.deliverTick, Robot: id,
			Kind: obs.EvFrameRx, Peer: q.from, Value: int64(q.size)})
	}
	frame := q.frame
	if m.params.MTUBytes > 0 {
		reasm := m.reassemblers[id]
		if reasm == nil {
			// Generous expiry: fragments of one frame all arrive in
			// the same delivery round, so a handful of rounds is
			// plenty.
			reasm = NewReassembler(16)
			m.reassemblers[id] = reasm
		}
		complete, ok := reasm.Add(q.from, frame, m.deliverTick)
		if !ok {
			return out // waiting for more fragments (or junk)
		}
		frame = complete
	}
	return append(out, Delivery{To: id, Frame: frame, seq: q.seq, rank: rank})
}

// Delivery is one frame arriving at one robot.
type Delivery struct {
	To    wire.RobotID
	Frame wire.Frame

	seq  uint64 // transmit sequence, for the (receiver, queue-order) sort
	rank int32  // receiver's index in the round's roster (counting-sort key)
}

// Deliver computes which robots receive each queued frame and clears
// the queue. Receivers are all robots within decode range of the
// transmitter's position, except the transmitter itself; unicast
// frames are radio broadcasts too (anyone in range hears them), but
// only the addressee is returned — the a-node's address filter drops
// the rest, and the paper's byte accounting likewise counts only
// decoded-and-kept traffic.
//
// Deliveries are returned in (receiver ID, then transmit queue order)
// — the ordering the simulation engine documents and that each
// c-node's log therefore records. Per receiver this equals send
// order; across receivers it is receiver-major, so every robot's
// inbound frame sequence is independent of how other receivers
// interleave.
//
// ids is treated as a set (duplicates are ignored). The returned slice
// is owned by the Medium and overwritten by the next Deliver call;
// callers that retain deliveries past the round must copy them.
// Delivery values themselves are safe to keep — only the backing array
// is reused.
//
//rebound:hotpath the swarm-round inner loop; scratch buffers amortize to zero
func (m *Medium) Deliver(ids []wire.RobotID) []Delivery {
	if len(m.queue) == 0 {
		return nil
	}
	sorted := append(m.sortedBuf[:0], ids...)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	m.sortedBuf = sorted
	if cap(m.ctrBuf) < len(sorted) {
		m.ctrBuf = make([]*ByteCounters, len(sorted)) //rebound:alloc amortized growth, zero at steady state
	}
	m.ctrBuf = m.ctrBuf[:len(sorted)]
	clear(m.ctrBuf)

	// With the spatial index on, candidate receivers per frame come
	// from a uniform grid over this round's positions instead of a
	// scan of every robot. Members carry the receiver's roster rank;
	// candidates arrive ascending by rank — which orders exactly as ID
	// in the deduped ascending roster, i.e. the order the brute scan
	// visits — and form a superset of the decodable set (see
	// rangeSlack), so the pipeline below sees the identical check
	// sequence, consumes identical loss draws, and emits identical
	// traces on both paths.
	indexed := m.params.SpatialIndex
	var queryR float64
	if indexed {
		r := m.params.RangeM()
		cell := r / 2
		if !(cell > 0) || math.IsInf(cell, 0) {
			indexed = false // degenerate link model: keep the brute scan
		} else {
			ps := m.perf.Start()
			queryR = r + rangeSlack
			m.grid.Reset(cell)
			for rank, id := range sorted {
				if p, ok := m.pos(id); ok {
					m.grid.Add(int32(rank), p)
				}
			}
			m.grid.Build()
			m.perf.End(perf.PhaseSpatialBuild, ps)
		}
	}

	out := m.outBuf[:0]
	held := m.queue[:0]
	for _, q := range m.queue {
		if q.readyAt > m.deliverTick {
			held = append(held, q) // still in the air (TxDelay); retry next round
			continue
		}
		src, ok := m.pos(q.from)
		if !ok {
			continue
		}
		if indexed {
			m.gridBuf = m.grid.Within(src, queryR, m.gridBuf)
			for _, cand := range m.gridBuf {
				id := sorted[cand.ID]
				if id == q.from {
					continue
				}
				if q.frame.Dst != wire.Broadcast && q.frame.Dst != id {
					continue
				}
				out = m.deliverTo(q, cand.ID, id, src, cand.Pos, out)
			}
			continue
		}
		for rank, id := range sorted {
			if id == q.from {
				continue
			}
			if q.frame.Dst != wire.Broadcast && q.frame.Dst != id {
				continue
			}
			dst, ok := m.pos(id)
			if !ok {
				continue
			}
			out = m.deliverTo(q, int32(rank), id, src, dst, out)
		}
	}
	m.outBuf = out
	// The loop above walks frame-major (preserving the loss model's
	// per-(frame, receiver) RNG draw order across versions); the
	// documented contract is receiver-major. The queue is ascending in
	// transmit seq — held frames keep their prefix positions, new sends
	// append with larger seqs — so each receiver's deliveries were
	// already appended in seq order, and a stable counting sort on
	// roster rank produces the exact (To, seq) order a comparison sort
	// of the unique (To, seq) keys would, in linear time and without
	// the struct-compare traffic that used to dominate swarm rounds.
	out = m.sortByRank(out, len(sorted))
	m.queue = held
	m.deliverTick++
	if m.params.MTUBytes > 0 && m.deliverTick%32 == 0 {
		m.expireReassemblers()
	}
	return out
}

// expireReassemblers sweeps stale fragment buffers, in ID order: each
// reassembler is independent today, but replay determinism must not
// hinge on that staying true.
//
//rebound:coldpath runs every 32 rounds, fragmented planes only
func (m *Medium) expireReassemblers() {
	ids := make([]wire.RobotID, 0, len(m.reassemblers))
	for id := range m.reassemblers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.reassemblers[id].Expire(m.deliverTick)
	}
}

// sortByRank stable counting sorts one round's deliveries by receiver
// roster rank into m.resultBuf and returns it (nil when empty, like
// the walk's nil result before this sort existed). nRanks is the
// roster length; every Delivery.rank is in [0, nRanks).
//
//rebound:hotpath counting sort replaced the struct-compare sort that dominated swarm rounds
func (m *Medium) sortByRank(out []Delivery, nRanks int) []Delivery {
	if len(out) == 0 {
		return nil
	}
	if cap(m.countBuf) < nRanks {
		m.countBuf = make([]int32, nRanks) //rebound:alloc amortized growth, zero at steady state
	}
	counts := m.countBuf[:nRanks]
	clear(counts)
	for i := range out {
		counts[out[i].rank]++
	}
	var sum int32
	for r := range counts {
		counts[r], sum = sum, sum+counts[r]
	}
	if cap(m.resultBuf) < len(out) {
		m.resultBuf = make([]Delivery, len(out)) //rebound:alloc amortized growth, zero at steady state
	}
	res := m.resultBuf[:len(out)]
	for _, d := range out {
		res[counts[d.rank]] = d
		counts[d.rank]++
	}
	return res
}

// InRange reports whether two robots can currently hear each other.
func (m *Medium) InRange(a, b wire.RobotID) bool {
	pa, oka := m.pos(a)
	pb, okb := m.pos(b)
	return oka && okb && m.params.RxPowerDBm(pa.Dist(pb)) >= m.params.RxSensitivityDBm
}

// NeighborsOf returns the ids (from the given set) within range of id,
// sorted ascending.
func (m *Medium) NeighborsOf(id wire.RobotID, ids []wire.RobotID) []wire.RobotID {
	var out []wire.RobotID
	for _, other := range ids {
		if other != id && m.InRange(id, other) {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package radio

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func bigFrame(n int) wire.Frame {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return wire.Frame{Src: 1, Dst: 5, Flags: wire.FlagAudit, Payload: payload}
}

func TestFragmentSmallFrameUntouched(t *testing.T) {
	f := bigFrame(30)
	frags := FragmentFrame(f, 66, 1)
	if len(frags) != 1 || frags[0].Flags&wire.FlagFragment != 0 {
		t.Fatalf("small frame should pass through: %d fragments", len(frags))
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	f := bigFrame(500)
	frags := FragmentFrame(f, 66, 7)
	if len(frags) < 8 {
		t.Fatalf("expected many fragments, got %d", len(frags))
	}
	for i, fr := range frags {
		if len(fr.Encode()) > 66 {
			t.Fatalf("fragment %d exceeds MTU: %d bytes", i, len(fr.Encode()))
		}
		if fr.Flags&wire.FlagFragment == 0 {
			t.Fatalf("fragment %d not flagged", i)
		}
		if fr.Flags&wire.FlagAudit == 0 {
			t.Fatalf("fragment %d lost the audit flag", i)
		}
		if fr.Src != f.Src || fr.Dst != f.Dst {
			t.Fatalf("fragment %d lost addressing", i)
		}
	}
	r := NewReassembler(0)
	var got wire.Frame
	done := false
	for i, fr := range frags {
		g, ok := r.Add(1, fr, 0)
		if ok {
			if i != len(frags)-1 {
				t.Fatalf("completed early at fragment %d", i)
			}
			got, done = g, true
		}
	}
	if !done {
		t.Fatal("never completed")
	}
	if got.Src != f.Src || got.Dst != f.Dst || got.Flags != f.Flags ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Error("reassembled frame differs from original")
	}
	if r.Pending() != 0 {
		t.Error("buffer leaked after completion")
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	f := bigFrame(300)
	frags := FragmentFrame(f, 66, 3)
	r := NewReassembler(0)
	// Deliver in reverse.
	var got wire.Frame
	done := false
	for i := len(frags) - 1; i >= 0; i-- {
		if g, ok := r.Add(1, frags[i], 0); ok {
			got, done = g, true
		}
	}
	if !done || !bytes.Equal(got.Payload, f.Payload) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassembleInterleavedSenders(t *testing.T) {
	fa, fb := bigFrame(200), bigFrame(200)
	fb.Payload[0] = 0xEE
	fragsA := FragmentFrame(fa, 66, 9)
	fragsB := FragmentFrame(fb, 66, 9) // same msgID, different transmitter
	r := NewReassembler(0)
	completed := 0
	for i := range fragsA {
		if _, ok := r.Add(1, fragsA[i], 0); ok {
			completed++
		}
		if g, ok := r.Add(2, fragsB[i], 0); ok {
			completed++
			if g.Payload[0] != 0xEE {
				t.Error("cross-sender chunk mixing")
			}
		}
	}
	if completed != 2 {
		t.Errorf("completed %d frames, want 2", completed)
	}
}

func TestReassembleDuplicateFragments(t *testing.T) {
	f := bigFrame(150)
	frags := FragmentFrame(f, 66, 4)
	r := NewReassembler(0)
	r.Add(1, frags[0], 0)
	r.Add(1, frags[0], 0) // duplicate must not complete or corrupt
	done := false
	for _, fr := range frags[1:] {
		if _, ok := r.Add(1, fr, 0); ok {
			done = true
		}
	}
	if !done {
		t.Error("duplicates broke reassembly")
	}
}

func TestReassembleExpiry(t *testing.T) {
	f := bigFrame(300)
	frags := FragmentFrame(f, 66, 5)
	r := NewReassembler(10)
	r.Add(1, frags[0], 0)
	if r.Pending() != 1 {
		t.Fatal("no pending buffer")
	}
	r.Expire(10)
	if r.Pending() != 0 {
		t.Error("stale buffer not expired")
	}
	// Remaining fragments now never complete.
	for _, fr := range frags[1:] {
		if _, ok := r.Add(1, fr, 11); ok {
			t.Error("completed from a partial set")
		}
	}
}

func TestReassemblerRejectsJunk(t *testing.T) {
	r := NewReassembler(0)
	junk := wire.Frame{Src: 1, Flags: wire.FlagFragment, Payload: []byte{1, 2}}
	if _, ok := r.Add(1, junk, 0); ok {
		t.Error("short fragment accepted")
	}
	// total = 0 and idx ≥ total are invalid.
	w := wire.NewWriter(8)
	w.U16(1)
	w.U8(3)
	w.U8(2)
	bad := wire.Frame{Src: 1, Flags: wire.FlagFragment, Payload: w.Bytes()}
	if _, ok := r.Add(1, bad, 0); ok {
		t.Error("idx ≥ total accepted")
	}
}

// Property: any frame round-trips through fragmentation at any viable
// MTU.
func TestFragmentRoundTripProperty(t *testing.T) {
	f := func(payload []byte, mtuRaw uint8, flags uint8) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		mtu := 20 + int(mtuRaw)%200 // 20..219
		orig := wire.Frame{Src: 3, Dst: 9, Flags: flags &^ wire.FlagFragment, Payload: payload}
		frags := FragmentFrame(orig, mtu, 42)
		r := NewReassembler(0)
		for i, fr := range frags {
			got, ok := r.Add(3, fr, 0)
			if ok {
				return i == len(frags)-1 &&
					got.Src == orig.Src && got.Dst == orig.Dst &&
					got.Flags == orig.Flags && bytes.Equal(got.Payload, orig.Payload)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMediumWithMTUDeliversWholeFrames(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0)}
	p := DefaultParams()
	p.MTUBytes = 66
	m := NewMedium(p, pos.fn, 1)
	f := bigFrame(500)
	f.Dst = 2
	m.Send(1, f)
	got := m.Deliver([]wire.RobotID{1, 2})
	if len(got) != 1 {
		t.Fatalf("deliveries: %d, want 1 reassembled frame", len(got))
	}
	if !bytes.Equal(got[0].Frame.Payload, f.Payload) {
		t.Error("payload corrupted in flight")
	}
	// Accounting sees the fragments (more bytes than the bare frame,
	// many frames).
	c := m.Counters(1)
	if c.TxFrames < 8 {
		t.Errorf("TxFrames = %d, expected one per fragment", c.TxFrames)
	}
	if c.TxAudit <= uint64(len(f.Encode())) {
		t.Error("fragment header overhead missing from accounting")
	}
}

func TestMediumMTULossDropsWholeFrame(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0)}
	p := DefaultParams()
	p.MTUBytes = 66
	p.LossRate = 0.3
	m := NewMedium(p, pos.fn, 7)
	delivered := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		f := bigFrame(500) // ~9 fragments ⇒ P(all survive) ≈ 0.7⁹ ≈ 4%
		f.Dst = 2
		m.Send(1, f)
		delivered += len(m.Deliver([]wire.RobotID{1, 2}))
	}
	if delivered > trials/4 {
		t.Errorf("delivered %d/%d large frames at 30%% fragment loss; compounding missing", delivered, trials)
	}
}

// roundTrip fragments f at mtu and reassembles, failing the test on
// any mismatch. It returns the fragment count.
func roundTrip(t *testing.T, orig wire.Frame, mtu int) int {
	t.Helper()
	frags := FragmentFrame(orig, mtu, 7)
	if len(frags) > 1 {
		for i, fr := range frags {
			if enc := fr.Encode(); len(enc) > mtu {
				t.Fatalf("mtu %d: fragment %d encodes to %d bytes", mtu, i, len(enc))
			}
			if fr.Flags&wire.FlagFragment == 0 {
				t.Fatalf("mtu %d: fragment %d missing FlagFragment", mtu, i)
			}
		}
	}
	r := NewReassembler(0)
	for i, fr := range frags {
		got, ok := r.Add(orig.Src, fr, 0)
		if !ok {
			continue
		}
		if i != len(frags)-1 {
			t.Fatalf("mtu %d: completed at fragment %d of %d", mtu, i+1, len(frags))
		}
		if got.Src != orig.Src || got.Dst != orig.Dst || got.Flags != orig.Flags ||
			!bytes.Equal(got.Payload, orig.Payload) {
			t.Fatalf("mtu %d: round trip mismatch", mtu)
		}
		return len(frags)
	}
	t.Fatalf("mtu %d: never reassembled from %d fragments", mtu, len(frags))
	return 0
}

// TestFragmentBoundaryMTUs walks the bottom of the MTU domain — from
// 12 (a single payload byte per fragment) upward — with encoding
// lengths that sit exactly on, one under, and one over a multiple of
// the chunk size, checking the fragment-count arithmetic and the
// round trip at every edge. The off-by-ones FragmentFrame could get
// wrong (ceil division, last-chunk clamp, the exact-fit case) all
// live in this corner.
func TestFragmentBoundaryMTUs(t *testing.T) {
	const minMTU = wire.FrameHeaderSize + FragHeaderSize + 1 // chunk = 1
	for mtu := minMTU; mtu <= minMTU+20; mtu++ {
		chunk := mtu - wire.FrameHeaderSize - FragHeaderSize
		for _, k := range []int{1, 2, 3, 7} {
			for _, off := range []int{-1, 0, 1} {
				encLen := k*chunk + off
				n := encLen - wire.FrameHeaderSize
				if n < 0 || encLen > 255*chunk {
					continue
				}
				orig := bigFrame(n)
				got := roundTrip(t, orig, mtu)
				want := 1 // fits: returned unchanged
				if encLen > mtu {
					want = (encLen + chunk - 1) / chunk
				}
				if got != want {
					t.Fatalf("mtu %d encLen %d: %d fragments, want %d", mtu, encLen, got, want)
				}
			}
		}
	}
}

// TestFragmentExactFitUnchanged pins the fits/doesn't-fit boundary:
// a frame whose encoding is exactly mtu bytes is returned as-is (no
// fragment flag, no header overhead), and one byte less of MTU
// splits it.
func TestFragmentExactFitUnchanged(t *testing.T) {
	orig := bigFrame(50)
	encLen := len(orig.Encode())
	frags := FragmentFrame(orig, encLen, 1)
	if len(frags) != 1 || frags[0].Flags&wire.FlagFragment != 0 ||
		!bytes.Equal(frags[0].Payload, orig.Payload) {
		t.Fatalf("exact-fit frame not returned unchanged: %d frags, flags %x",
			len(frags), frags[0].Flags)
	}
	if n := roundTrip(t, orig, encLen-1); n < 2 {
		t.Fatalf("mtu one under the encoding should fragment, got %d frames", n)
	}
}

// TestFragmentPanics pins the documented panics: an MTU with no room
// for a single payload byte after both headers, and a frame needing
// more than 255 fragments. mtu <= 0 is "no MTU" and must not panic.
func TestFragmentPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	big := bigFrame(100)
	for _, mtu := range []int{1, 5, wire.FrameHeaderSize + FragHeaderSize} {
		mtu := mtu
		mustPanic(fmt.Sprintf("mtu=%d", mtu), func() { FragmentFrame(big, mtu, 1) })
	}
	// chunk = 1 caps the encoding at 255 bytes; one more must refuse
	// rather than truncate.
	huge := bigFrame(255 - wire.FrameHeaderSize + 1)
	mustPanic("256 fragments", func() { FragmentFrame(huge, wire.FrameHeaderSize+FragHeaderSize+1, 1) })
	for _, mtu := range []int{0, -3} {
		if frags := FragmentFrame(big, mtu, 1); len(frags) != 1 || !bytes.Equal(frags[0].Payload, big.Payload) {
			t.Errorf("mtu=%d: want the frame back unchanged", mtu)
		}
	}
}

package radio

import (
	"errors"
	"fmt"
	"sort"

	"roborebound/internal/wire"
)

// Snapshot codec for the wireless medium. Dynamic state is the
// in-flight queue, the transmit sequence counter, per-robot byte
// counters, per-sender fragment msgID counters, reassembly buffers,
// the delivery-round clock, and the loss-model RNG stream. Parameters,
// position callback, fault hooks, observability, and all per-round
// scratch come from rebuilding the run. Snapshots are only legal at a
// tick boundary: staged mode must be off and every outbox drained
// (FlushStaged ran), which the codec enforces.
//
// deliverTick is serialized explicitly rather than derived from the
// engine clock: Deliver early-returns without advancing it when the
// queue is empty, so it lags the engine tick by a run-dependent amount
// — deriving it would silently shift reassembly expiry and trace
// stamps after a resume.

// EncodeState serializes the medium as an opaque blob.
func (m *Medium) EncodeState() ([]byte, error) {
	if m.staged {
		return nil, errors.New("radio: cannot snapshot a staged medium (FlushStaged first)")
	}
	w := wire.NewWriter(256)
	w.U32(uint32(len(m.queue)))
	for i := range m.queue {
		q := &m.queue[i]
		w.Blob(q.frame.Encode())
		w.U16(uint16(q.from))
		w.U64(q.seq)
		w.U64(uint64(q.readyAt))
	}
	w.U64(m.seq)

	ids := make([]wire.RobotID, 0, len(m.counters))
	for id := range m.counters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		c := m.counters[id]
		w.U16(uint16(id))
		w.U64(c.TxApp)
		w.U64(c.TxAudit)
		w.U64(c.RxApp)
		w.U64(c.RxAudit)
		w.U64(c.TxFrames)
		w.U64(c.RxFrames)
		w.U64(c.Dropped)
	}

	ids = ids[:0]
	for id := range m.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		s := m.senders[id]
		if len(s.outbox) > 0 {
			return nil, fmt.Errorf("radio: cannot snapshot sender %d with a non-empty staged outbox", id)
		}
		w.U16(uint16(id))
		w.U16(s.nextMsgID)
	}

	ids = ids[:0]
	for id := range m.reassemblers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		m.reassemblers[id].encodeState(w)
	}

	w.U64(uint64(m.deliverTick))
	for _, s := range m.rng.State() {
		w.U64(s)
	}
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt medium (same params, hooks, and observability).
// Byte counters are created through Counters so their metrics gauges
// register exactly as the live path registers them.
func (m *Medium) RestoreState(b []byte) error {
	if m.staged {
		return errors.New("radio: cannot restore into a staged medium")
	}
	r := wire.NewReader(b)
	nQueue := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	// Each queued frame is at least 4+FrameHeaderSize+18 bytes encoded.
	if nQueue > r.Remaining()/(4+wire.FrameHeaderSize+18) {
		return errors.New("radio: snapshot queue count exceeds payload")
	}
	queue := make([]queuedFrame, 0, nQueue)
	prevSeq := int64(-1)
	for i := 0; i < nQueue; i++ {
		frame, err := wire.DecodeFrame(r.Blob())
		if r.Err() != nil {
			return r.Err()
		}
		if err != nil {
			return err
		}
		from := wire.RobotID(r.U16())
		seq := r.U64()
		readyAt := wire.Tick(r.U64())
		if int64(seq) <= prevSeq {
			return errors.New("radio: snapshot queue not ascending in transmit sequence")
		}
		prevSeq = int64(seq)
		queue = append(queue, queuedFrame{
			frame: frame, from: from, seq: seq,
			size: frame.EncodedSize(), readyAt: readyAt,
		})
	}
	seq := r.U64()
	if prevSeq >= 0 && uint64(prevSeq) >= seq {
		return errors.New("radio: snapshot sequence counter behind queued frames")
	}

	nCtr := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nCtr > r.Remaining()/(2+7*8) {
		return errors.New("radio: snapshot counter count exceeds payload")
	}
	type ctrEntry struct {
		id wire.RobotID
		c  ByteCounters
	}
	ctrs := make([]ctrEntry, 0, nCtr)
	prev := -1
	for i := 0; i < nCtr; i++ {
		id := wire.RobotID(r.U16())
		c := ByteCounters{
			TxApp: r.U64(), TxAudit: r.U64(),
			RxApp: r.U64(), RxAudit: r.U64(),
			TxFrames: r.U64(), RxFrames: r.U64(), Dropped: r.U64(),
		}
		if int(id) <= prev {
			return errors.New("radio: snapshot counters not in canonical order")
		}
		prev = int(id)
		ctrs = append(ctrs, ctrEntry{id, c})
	}

	nSend := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nSend > r.Remaining()/4 {
		return errors.New("radio: snapshot sender count exceeds payload")
	}
	type sendEntry struct {
		id        wire.RobotID
		nextMsgID uint16
	}
	sends := make([]sendEntry, 0, nSend)
	prev = -1
	for i := 0; i < nSend; i++ {
		id := wire.RobotID(r.U16())
		next := r.U16()
		if int(id) <= prev {
			return errors.New("radio: snapshot senders not in canonical order")
		}
		prev = int(id)
		sends = append(sends, sendEntry{id, next})
	}

	nReasm := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nReasm > r.Remaining()/(2+12) {
		return errors.New("radio: snapshot reassembler count exceeds payload")
	}
	reassemblers := make(map[wire.RobotID]*Reassembler, nReasm)
	prev = -1
	for i := 0; i < nReasm; i++ {
		id := wire.RobotID(r.U16())
		if r.Err() != nil {
			return r.Err()
		}
		if int(id) <= prev {
			return errors.New("radio: snapshot reassemblers not in canonical order")
		}
		prev = int(id)
		reasm, err := decodeReassembler(r)
		if err != nil {
			return err
		}
		reassemblers[id] = reasm
	}

	deliverTick := wire.Tick(r.U64())
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = r.U64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	if err := m.rng.SetState(rngState); err != nil {
		return err
	}
	m.queue = queue
	m.seq = seq
	for _, e := range ctrs {
		*m.Counters(e.id) = e.c
	}
	for _, e := range sends {
		m.sender(e.id).nextMsgID = e.nextMsgID
	}
	m.reassemblers = reassemblers
	m.deliverTick = deliverTick
	return nil
}

// encodeState appends the reassembler's buffers in canonical
// (transmitter, msgID) order. Nil chunk slots (fragments not yet
// received) are encoded as presence bits so sparse buffers round-trip
// exactly.
func (re *Reassembler) encodeState(w *wire.Writer) {
	w.U64(uint64(re.Timeout))
	keys := make([]fragKey, 0, len(re.bufs))
	for k := range re.bufs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].msgID < keys[j].msgID
	})
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		buf := re.bufs[k]
		w.U16(uint16(k.from))
		w.U16(k.msgID)
		w.U8(uint8(buf.total))
		w.U64(uint64(buf.lastSeen))
		for _, c := range buf.chunks {
			if c == nil {
				w.U8(0)
				continue
			}
			w.U8(1)
			w.Blob(c)
		}
	}
}

func decodeReassembler(r *wire.Reader) (*Reassembler, error) {
	timeout := wire.Tick(r.U64())
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each buffer record is at least 14 bytes.
	if n > r.Remaining()/14 {
		return nil, errors.New("radio: snapshot reassembly buffer count exceeds payload")
	}
	re := NewReassembler(timeout)
	prevFrom, prevMsg := -1, -1
	for i := 0; i < n; i++ {
		from := wire.RobotID(r.U16())
		msgID := r.U16()
		total := int(r.U8())
		lastSeen := wire.Tick(r.U64())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if int(from) < prevFrom || (int(from) == prevFrom && int(msgID) <= prevMsg) {
			return nil, errors.New("radio: snapshot reassembly buffers not in canonical order")
		}
		prevFrom, prevMsg = int(from), int(msgID)
		if total == 0 {
			return nil, errors.New("radio: snapshot reassembly buffer with zero fragments")
		}
		buf := &fragBuf{total: total, chunks: make([][]byte, total), lastSeen: lastSeen}
		for j := 0; j < total; j++ {
			present := r.U8()
			if r.Err() != nil {
				return nil, r.Err()
			}
			switch present {
			case 0:
			case 1:
				buf.chunks[j] = append([]byte{}, r.Blob()...)
				if r.Err() != nil {
					return nil, r.Err()
				}
				buf.received++
			default:
				return nil, errors.New("radio: snapshot chunk presence flag out of range")
			}
		}
		if buf.received == 0 || buf.received >= total {
			return nil, errors.New("radio: snapshot reassembly buffer not incomplete")
		}
		re.bufs[fragKey{from: from, msgID: msgID}] = buf
	}
	return re, nil
}

package radio

import (
	"fmt"

	"roborebound/internal/wire"
)

// Fragmentation (Appendix B). The SecBot's RFM69HCW radio has a
// 66-byte FIFO, so any frame larger than the radio MTU — audit
// requests easily reach kilobytes — is split into fragments and
// reassembled by the receiver. A lost fragment loses the whole frame,
// which is exactly how the loss model should bite large transfers.

// FragHeaderSize is the per-fragment header: msgID (2) ‖ index (1) ‖
// total (1).
const FragHeaderSize = 4

// FragmentFrame splits a frame whose *encoding* exceeds mtu into
// fragments, each itself a frame whose payload is
// FragHeader ‖ chunk-of-original-encoding. Frames that already fit are
// returned unchanged. msgID must be unique per (transmitter, frame)
// within the reassembly horizon.
//
//rebound:coldpath fragmentation allocates by design; default planes run unfragmented
func FragmentFrame(f wire.Frame, mtu int, msgID uint16) []wire.Frame {
	enc := f.Encode()
	if mtu <= 0 || len(enc) <= mtu {
		return []wire.Frame{f}
	}
	chunk := mtu - wire.FrameHeaderSize - FragHeaderSize
	if chunk <= 0 {
		panic(fmt.Sprintf("radio: MTU %d cannot carry fragment headers", mtu))
	}
	total := (len(enc) + chunk - 1) / chunk
	if total > 255 {
		panic(fmt.Sprintf("radio: frame of %d bytes needs %d fragments (max 255)", len(enc), total))
	}
	frags := make([]wire.Frame, 0, total)
	for i := 0; i < total; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(enc) {
			hi = len(enc)
		}
		w := wire.NewWriter(FragHeaderSize + hi - lo)
		w.U16(msgID)
		w.U8(uint8(i))
		w.U8(uint8(total))
		w.Raw(enc[lo:hi])
		frags = append(frags, wire.Frame{
			Src:     f.Src,
			Dst:     f.Dst,
			Flags:   f.Flags | wire.FlagFragment,
			Payload: w.Bytes(),
		})
	}
	return frags
}

type fragKey struct {
	from  wire.RobotID
	msgID uint16
}

type fragBuf struct {
	total    int
	received int
	chunks   [][]byte
	lastSeen wire.Tick
}

// Reassembler rebuilds frames from fragments, keyed by (physical
// transmitter, msgID). Incomplete buffers are discarded after Timeout
// ticks of silence (a lost fragment must not pin memory forever).
type Reassembler struct {
	Timeout wire.Tick
	bufs    map[fragKey]*fragBuf
}

// NewReassembler creates a reassembler; timeout 0 means never expire.
//
//rebound:coldpath constructor, once per receiver
func NewReassembler(timeout wire.Tick) *Reassembler {
	return &Reassembler{Timeout: timeout, bufs: make(map[fragKey]*fragBuf)}
}

// Pending returns the number of incomplete frames buffered.
func (r *Reassembler) Pending() int { return len(r.bufs) }

// Add ingests one fragment from the given physical transmitter. When
// the fragment completes a frame, the reassembled original frame is
// returned. Malformed or inconsistent fragments are dropped.
//
//rebound:coldpath reassembly buffers are inherent; fragmented planes only
func (r *Reassembler) Add(from wire.RobotID, f wire.Frame, now wire.Tick) (wire.Frame, bool) {
	if f.Flags&wire.FlagFragment == 0 {
		return f, true // not fragmented
	}
	if len(f.Payload) < FragHeaderSize {
		return wire.Frame{}, false
	}
	rd := wire.NewReader(f.Payload)
	msgID := rd.U16()
	idx := int(rd.U8())
	total := int(rd.U8())
	chunk := f.Payload[FragHeaderSize:]
	if total == 0 || idx >= total {
		return wire.Frame{}, false
	}
	key := fragKey{from: from, msgID: msgID}
	buf := r.bufs[key]
	if buf == nil {
		buf = &fragBuf{total: total, chunks: make([][]byte, total)}
		r.bufs[key] = buf
	}
	if buf.total != total {
		// Inconsistent claim (or msgID reuse): restart with the new
		// framing rather than mixing chunks.
		buf = &fragBuf{total: total, chunks: make([][]byte, total)}
		r.bufs[key] = buf
	}
	buf.lastSeen = now
	if buf.chunks[idx] == nil {
		// Copy into a non-nil slice even when the chunk is empty (a
		// malformed zero-payload fragment): nil strictly means "slot not
		// received", both for the duplicate check above and for the
		// snapshot codec's presence bits.
		buf.chunks[idx] = append([]byte{}, chunk...)
		buf.received++
	}
	if buf.received < buf.total {
		return wire.Frame{}, false
	}
	delete(r.bufs, key)
	var enc []byte
	for _, c := range buf.chunks {
		enc = append(enc, c...)
	}
	orig, err := wire.DecodeFrame(enc)
	if err != nil {
		return wire.Frame{}, false
	}
	return orig, true
}

// Expire drops incomplete buffers not touched within Timeout.
func (r *Reassembler) Expire(now wire.Tick) {
	if r.Timeout == 0 {
		return
	}
	for key, buf := range r.bufs {
		if buf.lastSeen+r.Timeout <= now {
			delete(r.bufs, key)
		}
	}
}

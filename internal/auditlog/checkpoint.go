// Package auditlog implements the c-node side of RoboRebound's
// logging machinery (§3.4, §3.6): the append-only log of
// nondeterministic inputs and outputs, periodic checkpoints of the
// controller state, and the truncation invariant that keeps storage
// constant — the log always starts either at boot or at a checkpoint
// covered by f_max+1 tokens.
package auditlog

import (
	"fmt"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// Checkpoint is a snapshot the c-node records whenever it requests
// audits (§3.6). It carries the controller's complete state (opaque to
// this package; its encoding is owned by the controller) and fresh
// authenticators from both trusted nodes, so that an auditor replaying
// the *next* segment knows exactly where both hash chains stood.
//
// The §5.2 storage breakdown (time, pose, top hashes, neighbor table ≈
// 690 B for 24 neighbors) corresponds to Time + the two embedded
// authenticator tops + the flocking controller's state blob.
type Checkpoint struct {
	Time  wire.Tick          //rebound:clock trusted
	AuthS wire.Authenticator // s-node chain top at creation
	AuthA wire.Authenticator // a-node chain top at creation
	State []byte             // controller-specific encoded state
}

// Encode serializes the checkpoint. The encoding is canonical: Hash is
// defined over these bytes, and tokens bind to that hash.
func (c *Checkpoint) Encode() []byte {
	w := wire.NewWriter(8 + 2*wire.AuthenticatorSize + 4 + len(c.State))
	w.U64(uint64(c.Time))
	w.Raw(c.AuthS.Encode())
	w.Raw(c.AuthA.Encode())
	w.Blob(c.State)
	return w.Bytes()
}

// DecodeCheckpoint parses an encoded checkpoint.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	r := wire.NewReader(b)
	var c Checkpoint
	c.Time = wire.Tick(r.U64())
	var err error
	if c.AuthS, err = wire.DecodeAuthenticator(r.Raw(wire.AuthenticatorSize)); err != nil {
		return Checkpoint{}, err
	}
	if c.AuthA, err = wire.DecodeAuthenticator(r.Raw(wire.AuthenticatorSize)); err != nil {
		return Checkpoint{}, err
	}
	c.State = r.Blob()
	if err := r.Done(); err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: %w", err)
	}
	return c, nil
}

// Hash returns h_ckpt, the value tokens bind to (§3.5).
func (c *Checkpoint) Hash() cryptolite.ChainHash {
	return cryptolite.SHA1(c.Encode())
}

// EncodedSize returns the checkpoint's storage footprint in bytes.
func (c *Checkpoint) EncodedSize() int {
	return 8 + 2*wire.AuthenticatorSize + 4 + len(c.State)
}

package auditlog

import (
	"errors"
	"fmt"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// CoveredCheckpoint is a checkpoint together with the f_max+1 tokens
// that cover it; an audit request must present both so the auditor can
// trust the segment's starting state (§3.7).
type CoveredCheckpoint struct {
	CP     Checkpoint
	Tokens []wire.Token
}

type pendingCheckpoint struct {
	cp    Checkpoint
	hash  cryptolite.ChainHash
	index int // number of log entries recorded before this checkpoint
}

// Log is the c-node's retained window of its tamper-evident log. It
// maintains the §3.6 invariant: the retained entries always start
// either at boot or at a token-covered checkpoint, and everything
// before the most recent covered checkpoint has been discarded.
type Log struct {
	fromBoot bool
	start    *CoveredCheckpoint // nil ⇔ fromBoot
	entries  []wire.LogEntry
	pending  []pendingCheckpoint

	entryBytes int
	// truncations counts MarkCovered-driven discards, for tests.
	truncations int
}

// New returns an empty log starting at boot.
func New() *Log {
	return &Log{fromBoot: true}
}

// Append records one input/output entry.
func (l *Log) Append(e wire.LogEntry) {
	l.entries = append(l.entries, e)
	l.entryBytes += e.EncodedSize()
}

// AddCheckpoint records a checkpoint at the current log position. The
// caller (the protocol engine) creates one per audit round, right
// before requesting audits.
func (l *Log) AddCheckpoint(cp Checkpoint) {
	l.pending = append(l.pending, pendingCheckpoint{
		cp:    cp,
		hash:  cp.Hash(),
		index: len(l.entries),
	})
}

// ErrUnknownCheckpoint is returned when a hash matches no retained
// checkpoint.
var ErrUnknownCheckpoint = errors.New("auditlog: unknown checkpoint")

// MarkCovered installs the tokens covering the checkpoint with the
// given hash and truncates: entries before that checkpoint and all
// earlier checkpoints are discarded. This is what keeps c-node storage
// constant (§3.6, §5.2).
func (l *Log) MarkCovered(hash cryptolite.ChainHash, tokens []wire.Token) error {
	for i, p := range l.pending {
		if p.hash != hash {
			continue
		}
		l.entryBytes = 0
		l.entries = append([]wire.LogEntry(nil), l.entries[p.index:]...)
		for _, e := range l.entries {
			l.entryBytes += e.EncodedSize()
		}
		rest := l.pending[i+1:]
		for j := range rest {
			rest[j].index -= p.index
		}
		l.pending = append([]pendingCheckpoint(nil), rest...)
		l.start = &CoveredCheckpoint{CP: p.cp, Tokens: append([]wire.Token(nil), tokens...)}
		l.fromBoot = false
		l.truncations++
		return nil
	}
	return ErrUnknownCheckpoint
}

// Segment describes one auditable span: from the covered start (or
// boot) to a given pending checkpoint.
type Segment struct {
	FromBoot bool
	Start    *CoveredCheckpoint // nil ⇔ FromBoot
	End      Checkpoint
	EndHash  cryptolite.ChainHash
	Entries  []wire.LogEntry
}

// SegmentTo builds the segment ending at the pending checkpoint with
// the given hash. The returned entries alias the log's storage; the
// caller encodes them before the log mutates further.
func (l *Log) SegmentTo(hash cryptolite.ChainHash) (Segment, error) {
	for _, p := range l.pending {
		if p.hash != hash {
			continue
		}
		return Segment{
			FromBoot: l.fromBoot,
			Start:    l.start,
			End:      p.cp,
			EndHash:  p.hash,
			Entries:  l.entries[:p.index],
		}, nil
	}
	return Segment{}, ErrUnknownCheckpoint
}

// LatestCheckpoint returns the most recent pending checkpoint's hash,
// if any.
func (l *Log) LatestCheckpoint() (cryptolite.ChainHash, bool) {
	if len(l.pending) == 0 {
		return cryptolite.ChainHash{}, false
	}
	return l.pending[len(l.pending)-1].hash, true
}

// FromBoot reports whether the retained window starts at power-up.
func (l *Log) FromBoot() bool { return l.fromBoot }

// Start returns the covered start checkpoint, or nil if from boot.
func (l *Log) Start() *CoveredCheckpoint { return l.start }

// EntryCount returns the number of retained entries.
func (l *Log) EntryCount() int { return len(l.entries) }

// PendingCheckpoints returns the number of uncovered checkpoints.
func (l *Log) PendingCheckpoints() int { return len(l.pending) }

// Truncations returns how many times the log has been truncated.
func (l *Log) Truncations() int { return l.truncations }

// AccountingError cross-checks the incrementally maintained byte
// accounting against a full recount of the retained entries. A nil
// return means log growth matches the sum of entry sizes; a non-nil
// error describes the mismatch. The fault-injection invariant checker
// calls this every tick — Append and MarkCovered both mutate
// entryBytes incrementally, and this is the conservation check that
// keeps them honest.
func (l *Log) AccountingError() error {
	n := 0
	for i := range l.entries {
		n += l.entries[i].EncodedSize()
	}
	if n != l.entryBytes {
		return fmt.Errorf("auditlog: entryBytes=%d but %d retained entries re-encode to %d bytes",
			l.entryBytes, len(l.entries), n)
	}
	return nil
}

// StorageBytes returns the current storage footprint: retained
// entries, the covered start checkpoint with its tokens, and all
// pending checkpoints. This is the quantity Figs. 6–7 plot as
// "storage".
func (l *Log) StorageBytes() int {
	n := l.entryBytes
	if l.start != nil {
		n += l.start.CP.EncodedSize() + len(l.start.Tokens)*wire.TokenSize
	}
	for i := range l.pending {
		n += l.pending[i].cp.EncodedSize()
	}
	return n
}

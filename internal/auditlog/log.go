package auditlog

import (
	"errors"
	"fmt"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// CoveredCheckpoint is a checkpoint together with the f_max+1 tokens
// that cover it; an audit request must present both so the auditor can
// trust the segment's starting state (§3.7).
type CoveredCheckpoint struct {
	CP     Checkpoint
	Tokens []wire.Token
}

type pendingCheckpoint struct {
	cp    Checkpoint
	hash  cryptolite.ChainHash
	index int // number of log entries recorded before this checkpoint
}

// Log is the c-node's retained window of its tamper-evident log. It
// maintains the §3.6 invariant: the retained entries always start
// either at boot or at a token-covered checkpoint, and everything
// before the most recent covered checkpoint has been discarded.
//
// Alongside the decoded entries the log keeps their concatenated wire
// encoding, maintained incrementally: Append extends it, MarkCovered
// truncates it. Audit requests ship the encoded segment every round,
// so materializing it once at Append time replaces a per-round
// re-encode of the whole window (the protocol engine reads it through
// Segment.Encoded).
type Log struct {
	fromBoot bool
	start    *CoveredCheckpoint // nil ⇔ fromBoot
	entries  []wire.LogEntry
	pending  []pendingCheckpoint

	// encoded is the concatenation of the retained entries' encodings;
	// offsets[i] is the byte position of entries[i] within it, so any
	// checkpoint-aligned prefix is a slice, not an encode.
	encoded []byte
	offsets []int

	entryBytes int
	// truncations counts MarkCovered-driven discards, for tests.
	truncations int
}

// New returns an empty log starting at boot.
func New() *Log {
	return &Log{fromBoot: true}
}

// Append records one input/output entry.
func (l *Log) Append(e wire.LogEntry) {
	l.entries = append(l.entries, e)
	l.offsets = append(l.offsets, len(l.encoded))
	l.encoded = wire.AppendLogEntry(l.encoded, &e)
	l.entryBytes += e.EncodedSize()
}

// AddCheckpoint records a checkpoint at the current log position. The
// caller (the protocol engine) creates one per audit round, right
// before requesting audits.
func (l *Log) AddCheckpoint(cp Checkpoint) {
	l.pending = append(l.pending, pendingCheckpoint{
		cp:    cp,
		hash:  cp.Hash(),
		index: len(l.entries),
	})
}

// ErrUnknownCheckpoint is returned when a hash matches no retained
// checkpoint.
var ErrUnknownCheckpoint = errors.New("auditlog: unknown checkpoint")

// offsetAt returns the byte position of entry i within the encoded
// window (i == len(entries) addresses its end).
func (l *Log) offsetAt(i int) int {
	if i < len(l.offsets) {
		return l.offsets[i]
	}
	return len(l.encoded)
}

// MarkCovered installs the tokens covering the checkpoint with the
// given hash and truncates: entries before that checkpoint and all
// earlier checkpoints are discarded. This is what keeps c-node storage
// constant (§3.6, §5.2).
func (l *Log) MarkCovered(hash cryptolite.ChainHash, tokens []wire.Token) error {
	for i, p := range l.pending {
		if p.hash != hash {
			continue
		}
		cut := l.offsetAt(p.index)
		l.entries = append([]wire.LogEntry(nil), l.entries[p.index:]...)
		l.encoded = append([]byte(nil), l.encoded[cut:]...)
		tail := l.pending[i+1:]
		offs := l.offsets[p.index:]
		l.offsets = make([]int, len(offs))
		for j, o := range offs {
			l.offsets[j] = o - cut
		}
		l.entryBytes = len(l.encoded)
		for j := range tail {
			tail[j].index -= p.index
		}
		l.pending = append([]pendingCheckpoint(nil), tail...)
		l.start = &CoveredCheckpoint{CP: p.cp, Tokens: append([]wire.Token(nil), tokens...)}
		l.fromBoot = false
		l.truncations++
		return nil
	}
	return ErrUnknownCheckpoint
}

// Segment describes one auditable span: from the covered start (or
// boot) to a given pending checkpoint.
type Segment struct {
	FromBoot bool
	Start    *CoveredCheckpoint // nil ⇔ FromBoot
	End      Checkpoint
	EndHash  cryptolite.ChainHash
	Entries  []wire.LogEntry
	// Encoded is the entries' concatenated wire encoding, equal to
	// wire.EncodeLogEntries(Entries) but maintained incrementally by
	// the log (no per-round re-encode).
	Encoded []byte
}

// SegmentTo builds the segment ending at the pending checkpoint with
// the given hash. The returned entries and encoding alias the log's
// storage; the caller copies what it keeps before the log mutates
// further.
func (l *Log) SegmentTo(hash cryptolite.ChainHash) (Segment, error) {
	for _, p := range l.pending {
		if p.hash != hash {
			continue
		}
		return Segment{
			FromBoot: l.fromBoot,
			Start:    l.start,
			End:      p.cp,
			EndHash:  p.hash,
			Entries:  l.entries[:p.index],
			Encoded:  l.encoded[:l.offsetAt(p.index)],
		}, nil
	}
	return Segment{}, ErrUnknownCheckpoint
}

// LatestCheckpoint returns the most recent pending checkpoint's hash,
// if any.
func (l *Log) LatestCheckpoint() (cryptolite.ChainHash, bool) {
	if len(l.pending) == 0 {
		return cryptolite.ChainHash{}, false
	}
	return l.pending[len(l.pending)-1].hash, true
}

// FromBoot reports whether the retained window starts at power-up.
func (l *Log) FromBoot() bool { return l.fromBoot }

// Start returns the covered start checkpoint, or nil if from boot.
func (l *Log) Start() *CoveredCheckpoint { return l.start }

// EntryCount returns the number of retained entries.
func (l *Log) EntryCount() int { return len(l.entries) }

// PendingCheckpoints returns the number of uncovered checkpoints.
func (l *Log) PendingCheckpoints() int { return len(l.pending) }

// Truncations returns how many times the log has been truncated.
func (l *Log) Truncations() int { return l.truncations }

// AccountingError cross-checks the incrementally maintained byte
// accounting against a full recount of the retained entries. A nil
// return means log growth matches the sum of entry sizes; a non-nil
// error describes the mismatch. The fault-injection invariant checker
// calls this every tick — Append and MarkCovered mutate entryBytes,
// the encoded window, and its offsets incrementally, and this is the
// conservation check that keeps them honest.
func (l *Log) AccountingError() error {
	n := 0
	for i := range l.entries {
		if o := l.offsetAt(i); o != n {
			return fmt.Errorf("auditlog: entry %d recorded at offset %d, expected %d", i, o, n)
		}
		n += l.entries[i].EncodedSize()
	}
	if n != l.entryBytes {
		return fmt.Errorf("auditlog: entryBytes=%d but %d retained entries re-encode to %d bytes",
			l.entryBytes, len(l.entries), n)
	}
	if n != len(l.encoded) {
		return fmt.Errorf("auditlog: encoded window holds %d bytes, entries re-encode to %d",
			len(l.encoded), n)
	}
	if len(l.offsets) != len(l.entries) {
		return fmt.Errorf("auditlog: %d offsets for %d entries", len(l.offsets), len(l.entries))
	}
	return nil
}

// StorageBytes returns the current storage footprint: retained
// entries, the covered start checkpoint with its tokens, and all
// pending checkpoints. This is the quantity Figs. 6–7 plot as
// "storage".
func (l *Log) StorageBytes() int {
	n := l.entryBytes
	if l.start != nil {
		n += l.start.CP.EncodedSize() + len(l.start.Tokens)*wire.TokenSize
	}
	for i := range l.pending {
		n += l.pending[i].cp.EncodedSize()
	}
	return n
}

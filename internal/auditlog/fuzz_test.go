package auditlog

import (
	"bytes"
	"testing"

	"roborebound/internal/wire"
)

// FuzzDecodeCheckpoint drives the checkpoint decoder with arbitrary
// bytes. It must never panic, and any input it accepts must re-encode
// to exactly the bytes it was given — the encoding is canonical
// (tokens bind to its hash), so accept-then-reencode-differently would
// let two distinct byte strings claim the same checkpoint.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid := Checkpoint{Time: 1234, State: []byte("controller-state")}
	f.Add(valid.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 8+2*wire.AuthenticatorSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re := c.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted checkpoint is not canonical:\n in: %x\nout: %x", data, re)
		}
		if c.EncodedSize() != len(data) {
			t.Fatalf("EncodedSize %d != actual %d", c.EncodedSize(), len(data))
		}
		// The bound hash must be stable across a decode round trip.
		c2 := mustDecode(t, re)
		if c.Hash() != c2.Hash() {
			t.Fatal("hash changed across decode/encode")
		}
	})
}

func mustDecode(t *testing.T, b []byte) Checkpoint {
	t.Helper()
	c, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatalf("re-decode failed: %v", err)
	}
	return c
}

package auditlog

import (
	"bytes"
	"testing"
	"testing/quick"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

func entry(i int) wire.LogEntry {
	return wire.LogEntry{Kind: wire.EntryRecv, Payload: []byte{byte(i)}}
}

func ckpt(t wire.Tick, state string) Checkpoint {
	return Checkpoint{
		Time:  t,
		AuthS: wire.Authenticator{NodeKind: wire.NodeS, T: t, ID: 1},
		AuthA: wire.Authenticator{NodeKind: wire.NodeA, T: t, ID: 1},
		State: []byte(state),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := ckpt(42, "controller-state")
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != c.Time || got.AuthS != c.AuthS || got.AuthA != c.AuthA ||
		!bytes.Equal(got.State, c.State) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, c)
	}
	if got.Hash() != c.Hash() {
		t.Error("hash changed across round trip")
	}
	if c.EncodedSize() != len(c.Encode()) {
		t.Error("EncodedSize disagrees with Encode")
	}
}

func TestCheckpointHashSensitive(t *testing.T) {
	a := ckpt(1, "s")
	b := ckpt(2, "s")
	c := ckpt(1, "t")
	if a.Hash() == b.Hash() || a.Hash() == c.Hash() {
		t.Error("checkpoint hash not sensitive to fields")
	}
	d := a
	d.AuthA.Top[0] ^= 1
	if a.Hash() == d.Hash() {
		t.Error("checkpoint hash ignores authenticators")
	}
}

func TestCheckpointDecodeRejectsJunk(t *testing.T) {
	f := func(b []byte) bool {
		DecodeCheckpoint(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	c := ckpt(1, "x")
	enc := c.Encode()
	if _, err := DecodeCheckpoint(enc[:len(enc)-1]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, err := DecodeCheckpoint(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestLogStartsAtBoot(t *testing.T) {
	l := New()
	if !l.FromBoot() || l.Start() != nil || l.EntryCount() != 0 {
		t.Error("fresh log should start at boot, empty")
	}
	if _, ok := l.LatestCheckpoint(); ok {
		t.Error("fresh log has no checkpoints")
	}
}

func TestSegmentFromBoot(t *testing.T) {
	l := New()
	l.Append(entry(0))
	l.Append(entry(1))
	cp := ckpt(10, "s1")
	l.AddCheckpoint(cp)
	l.Append(entry(2)) // after the checkpoint: not in the segment

	seg, err := l.SegmentTo(cp.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if !seg.FromBoot || seg.Start != nil {
		t.Error("segment should start at boot")
	}
	if len(seg.Entries) != 2 {
		t.Errorf("segment has %d entries, want 2", len(seg.Entries))
	}
	if seg.EndHash != cp.Hash() {
		t.Error("segment end hash mismatch")
	}
}

func TestMarkCoveredTruncates(t *testing.T) {
	l := New()
	l.Append(entry(0))
	cp1 := ckpt(10, "s1")
	l.AddCheckpoint(cp1)
	l.Append(entry(1))
	l.Append(entry(2))
	cp2 := ckpt(20, "s2")
	l.AddCheckpoint(cp2)
	l.Append(entry(3))

	tokens := []wire.Token{{Auditor: 2, Auditee: 1, HCkpt: cp1.Hash()}}
	if err := l.MarkCovered(cp1.Hash(), tokens); err != nil {
		t.Fatal(err)
	}
	if l.FromBoot() {
		t.Error("log still claims boot start after coverage")
	}
	if l.Start() == nil || l.Start().CP.Hash() != cp1.Hash() {
		t.Error("start checkpoint not installed")
	}
	// Entry 0 (before cp1) must be gone; entries 1..3 retained.
	if l.EntryCount() != 3 {
		t.Errorf("retained %d entries, want 3", l.EntryCount())
	}
	// cp2's segment must now start at cp1 and contain entries 1,2.
	seg, err := l.SegmentTo(cp2.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if seg.FromBoot || seg.Start == nil {
		t.Fatal("segment should start at covered checkpoint")
	}
	if len(seg.Entries) != 2 ||
		seg.Entries[0].Payload[0] != 1 || seg.Entries[1].Payload[0] != 2 {
		t.Errorf("segment entries wrong: %+v", seg.Entries)
	}
	if len(seg.Start.Tokens) != 1 {
		t.Error("start tokens not carried")
	}
}

func TestMarkCoveredUnknownHash(t *testing.T) {
	l := New()
	var h cryptolite.ChainHash
	h[0] = 0xFF
	if err := l.MarkCovered(h, nil); err == nil {
		t.Error("unknown checkpoint accepted")
	}
	if _, err := l.SegmentTo(h); err == nil {
		t.Error("segment for unknown checkpoint accepted")
	}
}

func TestMarkCoveredSkipsIntermediate(t *testing.T) {
	// If cp1's tokens never arrive but cp2's do (multi-checkpoint
	// segment), covering cp2 must discard cp1 and everything before.
	l := New()
	l.Append(entry(0))
	cp1 := ckpt(10, "s1")
	l.AddCheckpoint(cp1)
	l.Append(entry(1))
	cp2 := ckpt(20, "s2")
	l.AddCheckpoint(cp2)
	l.Append(entry(2))

	if err := l.MarkCovered(cp2.Hash(), nil); err != nil {
		t.Fatal(err)
	}
	if l.PendingCheckpoints() != 0 {
		t.Errorf("pending checkpoints = %d, want 0", l.PendingCheckpoints())
	}
	if l.EntryCount() != 1 {
		t.Errorf("retained %d entries, want 1", l.EntryCount())
	}
	if _, err := l.SegmentTo(cp1.Hash()); err == nil {
		t.Error("discarded checkpoint still addressable")
	}
}

func TestStorageBoundedUnderSteadyState(t *testing.T) {
	// Steady state: every audit round appends entries, adds a
	// checkpoint, and covers it next round. Storage must stay bounded.
	l := New()
	var lastHash cryptolite.ChainHash
	var have bool
	peak := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			l.Append(entry(i))
		}
		cp := ckpt(wire.Tick(round), "state")
		l.AddCheckpoint(cp)
		if have {
			if err := l.MarkCovered(lastHash, make([]wire.Token, 4)); err != nil {
				t.Fatal(err)
			}
		}
		lastHash, have = cp.Hash(), true
		if s := l.StorageBytes(); s > peak {
			peak = s
		}
	}
	final := l.StorageBytes()
	// ~2 rounds of entries + 2 checkpoints; generous bound.
	if final > 4096 {
		t.Errorf("steady-state storage %dB, want bounded", final)
	}
	if l.Truncations() != 49 {
		t.Errorf("truncations = %d, want 49", l.Truncations())
	}
	_ = peak
}

func TestStorageGrowsWithoutCoverage(t *testing.T) {
	// A partitioned robot that can't collect tokens keeps everything —
	// that's what eventually drives it into Safe Mode, not data loss.
	l := New()
	base := l.StorageBytes()
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			l.Append(entry(i))
		}
		l.AddCheckpoint(ckpt(wire.Tick(round), "state"))
	}
	if l.StorageBytes() <= base {
		t.Error("storage should grow without token coverage")
	}
	if l.PendingCheckpoints() != 10 {
		t.Errorf("pending = %d", l.PendingCheckpoints())
	}
}

func TestSegmentEntriesExcludePostCheckpoint(t *testing.T) {
	l := New()
	cp := ckpt(5, "s")
	l.AddCheckpoint(cp) // checkpoint with zero prior entries
	l.Append(entry(9))
	seg, err := l.SegmentTo(cp.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Entries) != 0 {
		t.Error("post-checkpoint entries leaked into segment")
	}
}

// Property: under any interleaving of appends, checkpoints, and
// coverage events, the log maintains its invariants — retained entries
// start at the covered checkpoint, segment extraction matches what was
// appended since, and storage is the sum of its parts.
func TestLogRandomizedInvariants(t *testing.T) {
	type op struct {
		Kind byte // 0..3: append, checkpoint, cover-latest, segment-latest
	}
	f := func(ops []op, seedByte byte) bool {
		l := New()
		var hashes []cryptolite.ChainHash
		appendedSince := 0 // entries since last pending checkpoint
		covered := 0
		for i, o := range ops {
			switch o.Kind % 4 {
			case 0:
				l.Append(entry(i))
				appendedSince++
			case 1:
				cp := ckpt(wire.Tick(i), string(rune('a'+i%26)))
				l.AddCheckpoint(cp)
				hashes = append(hashes, cp.Hash())
				appendedSince = 0
			case 2:
				if len(hashes) > 0 {
					if err := l.MarkCovered(hashes[len(hashes)-1], nil); err != nil {
						return false
					}
					covered++
					hashes = hashes[:1:1]
					hashes = hashes[:0]
				}
			case 3:
				if len(hashes) > 0 {
					seg, err := l.SegmentTo(hashes[len(hashes)-1])
					if err != nil {
						return false
					}
					// Entries after the latest checkpoint are excluded.
					if len(seg.Entries) != l.EntryCount()-appendedSince {
						return false
					}
				}
			}
		}
		if covered > 0 && l.FromBoot() {
			return false
		}
		if l.Truncations() != covered {
			return false
		}
		return l.StorageBytes() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roborebound/internal/obs/perf"
)

func TestMapStableOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), 50, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				// Finish later cells faster to provoke out-of-order
				// completion; results must still land by index.
				time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSerialAndParallelIdentical(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("cell-%d", i*7%13), nil
	}
	serial, err := Map(context.Background(), 40, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 40, Options{Workers: 6}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results diverge at %d: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestWorkerBound(t *testing.T) {
	var active, peak atomic.Int32
	_, err := Map(context.Background(), 64, Options{Workers: 3},
		func(_ context.Context, i int) (struct{}, error) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			active.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Errorf("observed %d concurrent cells, want ≤ 3", got)
	}
}

func TestFirstErrorByIndexNotByTime(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 20, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) {
			if i == 5 || i == 15 {
				if i == 15 {
					return 0, boom // finishes first…
				}
				time.Sleep(2 * time.Millisecond)
				return 0, boom // …but index 5 must win
			}
			return i, nil
		})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *CellError", err)
	}
	if ce.Index != 5 {
		t.Errorf("reported cell %d, want lowest failing index 5", ce.Index)
	}
	if !errors.Is(err, boom) {
		t.Error("cause not preserved through CellError")
	}
}

func TestPanicCaptured(t *testing.T) {
	results, err := Map(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("cell exploded")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "cell exploded" {
		t.Errorf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	// Healthy cells still completed.
	if results[9] != 9 {
		t.Errorf("surviving cell lost: results[9] = %d", results[9])
	}
}

func TestAllRepanicsOnCallerGoroutine(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("All swallowed the cell panic")
		}
		if !strings.Contains(fmt.Sprint(r), "kaboom") {
			t.Fatalf("panic value %v does not carry the cell's message", r)
		}
	}()
	All(4, 8, func(i int) int {
		if i == 6 {
			panic("kaboom")
		}
		return i
	})
}

func TestContextCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	results, err := Map(ctx, 100, Options{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			started.Add(1)
			if i == 3 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return 1, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not stop dispatch")
	}
	// Undispatched cells hold the zero value.
	if results[99] != 0 {
		t.Errorf("results[99] = %d, want zero value", results[99])
	}
}

func TestOnDoneSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]time.Duration)
	inCallback := false
	_, err := Map(context.Background(), 30, Options{
		Workers: 8,
		OnDone: func(i int, err error, elapsed time.Duration) {
			// The runner serializes OnDone; this re-entrancy check
			// fails (under -race or by flag) if it ever overlaps.
			mu.Lock()
			if inCallback {
				t.Error("OnDone invoked concurrently")
			}
			inCallback = true
			seen[i] = elapsed
			inCallback = false
			mu.Unlock()
		},
	}, func(_ context.Context, i int) (int, error) {
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 30 {
		t.Fatalf("OnDone fired %d times, want 30", len(seen))
	}
	for i, d := range seen {
		if d <= 0 {
			t.Errorf("cell %d reported non-positive duration %v", i, d)
		}
	}
}

func TestWorkerCountResolution(t *testing.T) {
	cases := []struct {
		workers, n, wantMax int
	}{
		{0, 10, 10}, // GOMAXPROCS-capped, never above n
		{5, 3, 3},   // never more workers than cells
		{-2, 4, 4},
		{1, 100, 1},
	}
	for _, c := range cases {
		got := Options{Workers: c.workers}.WorkerCount(c.n)
		if got < 1 || got > c.wantMax {
			t.Errorf("WorkerCount(workers=%d, n=%d) = %d, want 1..%d",
				c.workers, c.n, got, c.wantMax)
		}
	}
}

func TestZeroCells(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

// meterClock returns a deterministic monotonic fake clock for sweep
// meters: every read advances it by step.
func meterClock(step int64) perf.Clock {
	var cur atomic.Int64
	return func() int64 { return cur.Add(step) }
}

func TestMapMeterCountsCells(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := perf.NewSweepMeter(meterClock(7))
		_, err := Map(context.Background(), 10, Options{Workers: workers, Meter: m},
			func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		r := m.Report()
		if r.Cells != 10 {
			t.Fatalf("workers=%d: meter saw %d cells, want 10", workers, r.Cells)
		}
		if r.Workers != (Options{Workers: workers}).WorkerCount(10) {
			t.Fatalf("workers=%d: meter workers = %d", workers, r.Workers)
		}
		if r.WallNs <= 0 || r.BusyNs <= 0 {
			t.Fatalf("workers=%d: empty telemetry %+v", workers, r)
		}
	}
}

func TestMapMeterUnderCancellation(t *testing.T) {
	// Cancel after the first few cells: undispatched cells must
	// contribute nothing to the meter — the busy side only counts
	// cells that actually ran.
	ctx, cancel := context.WithCancel(context.Background())
	m := perf.NewSweepMeter(meterClock(3))
	var ran atomic.Int64
	_, err := Map(ctx, 100, Options{Workers: 2, Meter: m},
		func(_ context.Context, i int) (int, error) {
			if ran.Add(1) == 4 {
				cancel()
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	r := m.Report()
	if int64(r.Cells) != ran.Load() {
		t.Fatalf("meter saw %d cells, but %d ran", r.Cells, ran.Load())
	}
	if r.Cells >= 100 {
		t.Fatalf("cancellation did not stop dispatch: %d cells", r.Cells)
	}
	if r.Utilization < 0 || r.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", r.Utilization)
	}
}

func TestMapMeterCountsPanickedCells(t *testing.T) {
	// A panicking cell still ran, so its elapsed time is telemetry;
	// the panic must still surface as a PanicError.
	m := perf.NewSweepMeter(meterClock(5))
	_, err := Map(context.Background(), 3, Options{Workers: 1, Meter: m},
		func(_ context.Context, i int) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) && !asPanic(err, &pe) {
		t.Fatalf("panic not surfaced: %v", err)
	}
	if r := m.Report(); r.Cells != 3 {
		t.Fatalf("meter saw %d cells, want 3 (panicked cell included)", r.Cells)
	}
}

func TestMapMeterElapsedFeedsOnDone(t *testing.T) {
	// With a meter attached, OnDone's elapsed comes from the meter's
	// clock — each cell spans exactly one step of the fake clock.
	m := perf.NewSweepMeter(meterClock(11))
	var elapsed []time.Duration
	_, err := Map(context.Background(), 4, Options{
		Workers: 1,
		Meter:   m,
		OnDone:  func(_ int, _ error, e time.Duration) { elapsed = append(elapsed, e) },
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(elapsed) != 4 {
		t.Fatalf("OnDone ran %d times, want 4", len(elapsed))
	}
	for i, e := range elapsed {
		if e != 11 {
			t.Fatalf("elapsed[%d] = %d, want 11 (one fake-clock step)", i, e)
		}
	}
}

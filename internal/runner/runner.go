// Package runner executes independent simulation cells concurrently
// on a bounded worker pool while preserving the exact semantics of a
// serial loop: results come back in input order, a panic in any cell
// surfaces on the caller's goroutine, and a cancelled context stops
// dispatching new cells. The experiment sweeps (Figs. 2, 6, 7 —
// grids of (scenario, seed) cells that share no state) are the
// intended workload; each cell owns its own World, Medium, and PRNG,
// so running them on N workers is observably identical to running
// them one after another, just faster.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"roborebound/internal/obs/perf"
)

// Options tunes one Map call.
type Options struct {
	// Workers bounds concurrency. 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 forces the serial fast path, which
	// runs every cell inline on the caller's goroutine.
	Workers int
	// OnDone, if non-nil, is invoked once per completed cell with its
	// index, error (nil on success), and wall-clock duration. Calls
	// are serialized under a mutex, so the callback may print or
	// accumulate without its own locking. Completion order is
	// nondeterministic under parallelism; use the index, not the call
	// sequence, to identify cells.
	OnDone func(index int, err error, elapsed time.Duration)
	// Meter, if non-nil, collects sweep telemetry: per-cell latency
	// into streaming histograms plus a worker-utilization window
	// spanning the Map call. It is also the pool's wall-clock source —
	// every per-cell elapsed reading (including the one OnDone sees)
	// comes from the meter's injected clock, which is how tests pin the
	// timing math. nil reads the perf package clock directly and
	// records nothing.
	Meter *perf.SweepMeter
}

// WorkerCount resolves an Options.Workers value to an actual pool
// size for n cells.
func (o Options) WorkerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellError wraps an error returned by one cell, recording which one.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }
func (e *CellError) Unwrap() error { return e.Err }

// PanicError records a panic captured inside a worker. Map converts
// worker panics into errors so one bad cell cannot crash the process
// from an anonymous goroutine; callers that want the serial-loop
// crash semantics re-panic (see All).
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cell %d panicked: %v", e.Index, e.Value)
}

// Map runs fn for every index in [0, n) on a bounded worker pool and
// returns the results in input order — results[i] is fn(ctx, i)
// regardless of which worker ran it or when it finished. The first
// failing cell (lowest index) determines the returned error; cells
// that already started still run to completion, but no new cells are
// dispatched after the context is cancelled (their slots hold the
// zero value and the error includes ctx.Err()).
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers := opts.WorkerCount(n)
	opts.Meter.Begin(workers)
	defer opts.Meter.End()

	errs := make([]error, n)
	var doneMu sync.Mutex
	finish := func(i int, err error, elapsed time.Duration) {
		errs[i] = err
		if opts.OnDone != nil {
			doneMu.Lock()
			opts.OnDone(i, err, elapsed)
			doneMu.Unlock()
		}
	}
	runCell := func(i int) {
		// Elapsed time is telemetry only (OnDone + meter histograms),
		// never simulation state. All wall-clock reads go through the
		// meter seam — perf.Now when no meter is attached — so the pool
		// has no time source of its own.
		start := opts.Meter.Now()
		var (
			val T
			err error
		)
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				}
			}()
			val, err = fn(ctx, i)
		}()
		results[i] = val
		if err != nil && !isPanic(err) {
			err = &CellError{Index: i, Err: err}
		}
		elapsedNs := opts.Meter.Now() - start
		opts.Meter.CellDone(elapsedNs)
		finish(i, err, time.Duration(elapsedNs))
	}

	if workers == 1 {
		// Serial fast path: no goroutines, no channels — the parallel
		// runner degenerates to the plain loop it replaced.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				errs[i] = &CellError{Index: i, Err: ctx.Err()}
				continue
			}
			runCell(i)
		}
		return results, firstError(errs)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runCell(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		//rebound:nondet dispatch-vs-cancel race is deliberate; results are indexed by cell, so completion order never escapes
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = &CellError{Index: j, Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results, firstError(errs)
}

func isPanic(err error) bool {
	_, ok := err.(*PanicError)
	return ok
}

// firstError returns the error of the lowest-index failing cell, so
// the reported failure is deterministic no matter which worker
// finished first.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// All is Map for infallible cells: it runs fn for every index with
// the given worker bound and returns results in input order. A panic
// inside any cell is re-raised on the caller's goroutine — exactly
// what a serial `for` loop over the same cells would do — after all
// in-flight cells drain.
func All[T any](workers int, n int, fn func(i int) T) []T {
	return AllOpts(Options{Workers: workers}, n, fn)
}

// AllOpts is All with full Options (progress callbacks etc.).
func AllOpts[T any](opts Options, n int, fn func(i int) T) []T {
	results, err := Map(context.Background(), n, opts, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		var pe *PanicError
		if ok := asPanic(err, &pe); ok {
			panic(fmt.Sprintf("runner: %v\n%s", pe.Value, pe.Stack))
		}
		panic(err) // unreachable: fn cannot return an error
	}
	return results
}

func asPanic(err error, target **PanicError) bool {
	for err != nil {
		if pe, ok := err.(*PanicError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

package cryptolite

import (
	"testing"

	"roborebound/internal/prng"
)

// TestSHA1StreamMatchesReference pins the stdlib-backed stream to the
// from-scratch SHA1Hasher bit for bit, over lengths straddling every
// block boundary and over arbitrary write splits. This is the license
// for the streaming hash chain to use SHA1Stream: both implement FIPS
// 180-1, and this test is where that claim is checked rather than
// assumed.
func TestSHA1StreamMatchesReference(t *testing.T) {
	rng := prng.New(0x57EA)
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	var s SHA1Stream
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 119, 120, 128, 1000, 4096} {
		var ref SHA1Hasher
		ref.Write(msg[:n])
		want := ref.Sum()

		// One-shot write.
		s.Reset()
		s.Write(msg[:n])
		if got := s.Sum(); got != want {
			t.Fatalf("len %d: stream %x != reference %x", n, got, want)
		}

		// Random splits.
		s.Reset()
		for off := 0; off < n; {
			step := 1 + rng.Intn(n-off)
			s.Write(msg[off : off+step])
			off += step
		}
		if got := s.Sum(); got != want {
			t.Fatalf("len %d (split writes): stream diverges from reference", n)
		}
	}
}

// TestSHA1StreamReuse checks Reset actually restarts the state: a
// reused stream must hash exactly like a fresh one.
func TestSHA1StreamReuse(t *testing.T) {
	var a, b SHA1Stream
	a.Reset()
	a.Write([]byte("poison the state"))
	a.Sum()
	a.Reset()
	a.Write([]byte("payload"))
	b.Write([]byte("payload"))
	if a.Sum() != b.Sum() {
		t.Fatal("Reset did not restore the initial state")
	}
}

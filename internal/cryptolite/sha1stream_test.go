package cryptolite

import (
	"testing"

	"roborebound/internal/prng"
)

// TestSHA1StreamMatchesReference pins the stdlib-backed stream to the
// from-scratch SHA1Hasher bit for bit, over lengths straddling every
// block boundary and over arbitrary write splits. This is the license
// for the streaming hash chain to use SHA1Stream: both implement FIPS
// 180-1, and this test is where that claim is checked rather than
// assumed.
func TestSHA1StreamMatchesReference(t *testing.T) {
	rng := prng.New(0x57EA)
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	var s SHA1Stream
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 119, 120, 128, 1000, 4096} {
		var ref SHA1Hasher
		ref.Write(msg[:n])
		want := ref.Sum()

		// One-shot write.
		s.Reset()
		s.Write(msg[:n])
		if got := s.Sum(); got != want {
			t.Fatalf("len %d: stream %x != reference %x", n, got, want)
		}

		// Random splits.
		s.Reset()
		for off := 0; off < n; {
			step := 1 + rng.Intn(n-off)
			s.Write(msg[off : off+step])
			off += step
		}
		if got := s.Sum(); got != want {
			t.Fatalf("len %d (split writes): stream diverges from reference", n)
		}
	}
}

// TestSHA1StreamReuse checks Reset actually restarts the state: a
// reused stream must hash exactly like a fresh one.
func TestSHA1StreamReuse(t *testing.T) {
	var a, b SHA1Stream
	a.Reset()
	a.Write([]byte("poison the state"))
	a.Sum()
	a.Reset()
	a.Write([]byte("payload"))
	b.Write([]byte("payload"))
	if a.Sum() != b.Sum() {
		t.Fatal("Reset did not restore the initial state")
	}
}

// TestSHA1StreamStateRoundTrip pins the snapshot contract: a stream
// captured mid-message and restored into a fresh stream must absorb
// the remaining bytes into the identical digest — including splits
// that leave a partial block buffered in the digest.
func TestSHA1StreamStateRoundTrip(t *testing.T) {
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	for split := 0; split <= len(msg); split += 13 {
		var a SHA1Stream
		a.Reset()
		a.Write(msg[:split])
		st, err := a.MarshalState()
		if err != nil {
			t.Fatalf("split %d: MarshalState: %v", split, err)
		}
		var b SHA1Stream
		if err := b.UnmarshalState(st); err != nil {
			t.Fatalf("split %d: UnmarshalState: %v", split, err)
		}
		a.Write(msg[split:])
		b.Write(msg[split:])
		if a.Sum() != b.Sum() {
			t.Fatalf("split %d: restored stream diverged", split)
		}
		var ref SHA1Stream
		ref.Reset()
		ref.Write(msg)
		if b.Sum() != ref.Sum() {
			t.Fatalf("split %d: restored stream diverged from one-shot reference", split)
		}
	}
}

// Malformed state bytes must error, never panic.
func TestSHA1StreamUnmarshalStateRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 200)} {
		var s SHA1Stream
		if err := s.UnmarshalState(b); err == nil {
			t.Fatalf("UnmarshalState(%d bytes) accepted garbage", len(b))
		}
	}
}

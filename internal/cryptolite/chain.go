package cryptolite

import "encoding/binary"

// Hash chains (§3.4). Each trusted node maintains a chain over the
// inputs/outputs it forwards: the chain starts at h₀ := 0 after
// power-up, and appending a batch d of entries yields
// hᵢ := H(hᵢ₋₁ ‖ d). An auditor who knows h at two points and the
// entries in between can verify existence and ordering by recomputing.

// ChainHash is the top-level value of a hash chain.
type ChainHash [SHA1Size]byte

// ZeroChain is h₀, the chain value at power-up.
var ZeroChain ChainHash

// ChainExtend returns H(top ‖ batch…) where batch is the ordered list
// of entries flushed together (batching per §3.8). Each entry is
// length-prefixed inside the hash input so that entry boundaries are
// unambiguous: without the prefix, ["ab","c"] and ["a","bc"] would
// collide.
func ChainExtend(top ChainHash, batch [][]byte) ChainHash {
	var h SHA1Hasher
	h.Write(top[:])
	var lenBuf [4]byte
	for _, d := range batch {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(d)))
		h.Write(lenBuf[:])
		h.Write(d)
	}
	return h.Sum()
}

// ChainExtendOne is ChainExtend with a single entry.
func ChainExtendOne(top ChainHash, d []byte) ChainHash {
	return ChainExtend(top, [][]byte{d})
}

package cryptolite

import (
	"bytes"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// FIPS 180-1 / RFC 3174 test vectors.
func TestSHA1Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
		{"The quick brown fox jumps over the lazy dog",
			"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
	}
	for _, c := range cases {
		got := SHA1([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA1(%.20q…) = %x, want %s", c.in, got, c.want)
		}
	}
}

// Cross-check against the standard library on random inputs and on
// lengths straddling the 55/56/63/64-byte padding boundaries.
func TestSHA1MatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 1000} {
		in := bytes.Repeat([]byte{byte(n)}, n)
		got := SHA1(in)
		want := stdsha1.Sum(in)
		if got != want {
			t.Errorf("len %d: got %x, want %x", n, got, want)
		}
	}
	f := func(in []byte) bool {
		return SHA1(in) == stdsha1.Sum(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Incremental writes must produce the same digest as one-shot hashing
// regardless of how the input is split.
func TestSHA1IncrementalSplits(t *testing.T) {
	msg := []byte(strings.Repeat("roborebound", 37))
	want := SHA1(msg)
	for _, split := range []int{1, 7, 63, 64, 65, 200} {
		var h SHA1Hasher
		for i := 0; i < len(msg); i += split {
			end := i + split
			if end > len(msg) {
				end = len(msg)
			}
			h.Write(msg[i:end])
		}
		if got := h.Sum(); got != want {
			t.Errorf("split %d: got %x, want %x", split, got, want)
		}
	}
}

func TestSHA1ZeroValueHasher(t *testing.T) {
	var h SHA1Hasher
	if got, want := h.Sum(), SHA1(nil); got != want {
		t.Errorf("zero-value Sum = %x, want empty digest %x", got, want)
	}
}

func BenchmarkSHA1_64B(b *testing.B)  { benchSHA1(b, 64) }
func BenchmarkSHA1_270B(b *testing.B) { benchSHA1(b, 270) }
func BenchmarkSHA1_2KB(b *testing.B)  { benchSHA1(b, 2048) }

func benchSHA1(b *testing.B, n int) {
	in := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SHA1(in)
	}
}

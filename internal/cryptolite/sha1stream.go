package cryptolite

import (
	"errors"

	//rebound:tcb-exempt keyless stdlib digest backing the streaming chain; bit-equality with the from-scratch SHA1Hasher is pinned by TestSHA1StreamMatchesReference
	"crypto/sha1"
	//rebound:tcb-exempt interface type of the stdlib digest above; no key material
	"hash"
)

// SHA1Stream is an incremental SHA-1 for the hash-chain hot path. It
// delegates to the standard library's digest (assembly/SHA-NI on most
// platforms) instead of the from-scratch SHA1Hasher, because the
// streaming chain feeds every log entry of every robot through it —
// at swarm scale the pure-Go compression function dominates the
// profile. The from-scratch implementation remains the reference:
// TestSHA1StreamMatchesReference pins the two bit-identical over
// arbitrary write splits, and the buffered reference Chain (which the
// swarm differential tests prove byte-identical to the streaming one)
// still runs on SHA1Hasher.
//
// The zero value is ready to use; Reset reuses the underlying digest,
// so a long-lived stream allocates exactly once.
type SHA1Stream struct {
	h hash.Hash
	// sum backs Sum's output: an out buffer declared on the caller's
	// stack would escape through the hash.Hash interface and allocate
	// per call; this field lives with the (heap-resident) stream.
	sum [SHA1Size]byte
}

// Reset restarts the stream at the SHA-1 initial state.
func (s *SHA1Stream) Reset() {
	if s.h == nil {
		s.h = sha1.New()
		return
	}
	s.h.Reset()
}

// Write absorbs p into the running digest.
//
//rebound:hotpath every chained byte flows through here
func (s *SHA1Stream) Write(p []byte) {
	if s.h == nil {
		s.h = sha1.New()
	}
	s.h.Write(p)
}

// MarshalState serializes the running digest — Merkle–Damgård chaining
// values plus the unprocessed block tail — so a snapshot can capture a
// hash chain mid-batch and the restored stream absorbs the remaining
// entries into the identical digest. The bytes are the stdlib digest's
// own binary marshaling (stable: it is part of Go's encoding
// compatibility surface) and are treated as opaque by callers.
func (s *SHA1Stream) MarshalState() ([]byte, error) {
	if s.h == nil {
		s.h = sha1.New()
	}
	m, ok := s.h.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return nil, errors.New("cryptolite: sha1 digest does not support state marshaling")
	}
	return m.MarshalBinary()
}

// UnmarshalState restores a digest previously captured by
// MarshalState. Malformed bytes error; the stream is left reset.
func (s *SHA1Stream) UnmarshalState(b []byte) error {
	if s.h == nil {
		s.h = sha1.New()
	}
	u, ok := s.h.(interface{ UnmarshalBinary([]byte) error })
	if !ok {
		return errors.New("cryptolite: sha1 digest does not support state unmarshaling")
	}
	if err := u.UnmarshalBinary(b); err != nil {
		s.h.Reset()
		return err
	}
	return nil
}

// Sum returns the digest of everything written since the last Reset.
// It does not disturb the stream (the standard digest finalizes a
// copy), but chain code always Resets before reuse anyway.
//
//rebound:hotpath once per batch flush; the field-backed sum avoids an escape
func (s *SHA1Stream) Sum() [SHA1Size]byte {
	if s.h == nil {
		s.h = sha1.New()
	}
	s.h.Sum(s.sum[:0])
	return s.sum
}

// Package cryptolite implements the two cryptographic primitives
// RoboRebound relies on (§4 "Cryptography"): SHA-1 for the trusted
// nodes' hash chains and LightMAC — instantiated over the PRESENT-80
// lightweight block cipher with 80-bit keys and 64-bit tags — for
// authenticators, token requests, and tokens.
//
// Both are implemented from scratch, as they would be in the few
// hundred lines of ROM code the paper burns into the PIC MCUs, and are
// validated against published test vectors. The package additionally
// provides the hash-chain construction shared by the s-node and
// a-node (§3.4).
package cryptolite

import "encoding/binary"

// SHA1Size is the size of a SHA-1 digest in bytes.
const SHA1Size = 20

// SHA1 computes the SHA-1 digest of data (FIPS 180-1). The paper
// argues SHA-1 is sufficient for mission-length integrity windows
// (hours); swapping the hash only requires replacing this function.
func SHA1(data []byte) [SHA1Size]byte {
	var h SHA1Hasher
	h.Write(data)
	return h.Sum()
}

// SHA1Hasher is an incremental SHA-1 state. The zero value is ready to
// use.
type SHA1Hasher struct {
	h      [5]uint32
	block  [64]byte
	nBlock int    // bytes buffered in block
	length uint64 // total message length in bytes
	init   bool
}

func (d *SHA1Hasher) reset() {
	d.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	d.init = true
}

// Write absorbs p into the hash state. It never fails.
func (d *SHA1Hasher) Write(p []byte) (int, error) {
	if !d.init {
		d.reset()
	}
	n := len(p)
	d.length += uint64(n)
	if d.nBlock > 0 {
		c := copy(d.block[d.nBlock:], p)
		d.nBlock += c
		p = p[c:]
		if d.nBlock == 64 {
			d.compress(d.block[:])
			d.nBlock = 0
		}
	}
	for len(p) >= 64 {
		d.compress(p[:64])
		p = p[64:]
	}
	if len(p) > 0 {
		d.nBlock = copy(d.block[:], p)
	}
	return n, nil
}

// Sum finalizes and returns the digest. The hasher must not be reused
// after Sum (matching how the trusted-node ROM code uses it: one shot
// per chain flush).
func (d *SHA1Hasher) Sum() [SHA1Size]byte {
	if !d.init {
		d.reset()
	}
	// Append 0x80, pad with zeros to 56 mod 64, then the bit length.
	var pad [72]byte
	pad[0] = 0x80
	padLen := 64 - (int(d.length)+8)%64
	if padLen <= 0 {
		padLen += 64
	}
	binary.BigEndian.PutUint64(pad[padLen:], d.length*8)
	d.Write(pad[:padLen+8])
	var out [SHA1Size]byte
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func (d *SHA1Hasher) compress(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & dd)
			k = 0x5A827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ED9EBA1
		case i < 60:
			f = (b & c) | (b & dd) | (c & dd)
			k = 0x8F1BBCDC
		default:
			f = b ^ c ^ dd
			k = 0xCA62C1D6
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

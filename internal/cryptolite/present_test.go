package cryptolite

import (
	"testing"
)

// Published PRESENT-80 test vectors (Bogdanov et al., CHES 2007,
// Appendix). These pin the S-box, permutation layer, and key schedule.
func TestPresentVectors(t *testing.T) {
	cases := []struct {
		key   [PresentKeySize]byte
		plain uint64
		want  uint64
	}{
		{[PresentKeySize]byte{}, 0x0000000000000000, 0x5579C1387B228445},
		{allFF(), 0x0000000000000000, 0xE72C46C0F5945049},
		{[PresentKeySize]byte{}, 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B},
		{allFF(), 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2},
	}
	for i, c := range cases {
		p := NewPresent(c.key)
		if got := p.Encrypt(c.plain); got != c.want {
			t.Errorf("vector %d: Encrypt(%016X) = %016X, want %016X", i, c.plain, got, c.want)
		}
	}
}

func allFF() (k [PresentKeySize]byte) {
	for i := range k {
		k[i] = 0xFF
	}
	return
}

// The permutation layer must be a bijection with the documented fixed
// points (0, 21, 42, 63).
func TestPresentPermutationBijective(t *testing.T) {
	seen := make(map[uint]bool)
	for i := uint(0); i < 64; i++ {
		out := presentPermute(uint64(1) << i)
		// out must be a single bit
		if out == 0 || out&(out-1) != 0 {
			t.Fatalf("permute of bit %d not a single bit: %x", i, out)
		}
		pos := uint(0)
		for out>>pos&1 == 0 {
			pos++
		}
		if seen[pos] {
			t.Fatalf("permutation collides at output bit %d", pos)
		}
		seen[pos] = true
		wantPos := i * 16 % 63
		if i == 63 {
			wantPos = 63
		}
		if pos != wantPos {
			t.Errorf("bit %d → %d, want %d", i, pos, wantPos)
		}
	}
	for _, fixed := range []uint{0, 21, 42, 63} {
		out := presentPermute(uint64(1) << fixed)
		if out != uint64(1)<<fixed {
			t.Errorf("bit %d should be a fixed point", fixed)
		}
	}
}

// The S-box layer applied nibble-by-nibble must match the table.
func TestPresentSBoxLayer(t *testing.T) {
	if got := presentSubstitute(0x0123456789ABCDEF); got != 0xC56B90AD3EF84712 {
		t.Errorf("sBox layer = %016X", got)
	}
	if got := presentSubstitute(0); got != 0xCCCCCCCCCCCCCCCC {
		t.Errorf("sBox(0) = %016X", got)
	}
}

// Different keys must (overwhelmingly) produce different ciphertexts.
func TestPresentKeySensitivity(t *testing.T) {
	k1 := [PresentKeySize]byte{}
	k2 := [PresentKeySize]byte{9: 1} // flip lowest key bit
	c1 := NewPresent(k1).Encrypt(0xDEADBEEFCAFEF00D)
	c2 := NewPresent(k2).Encrypt(0xDEADBEEFCAFEF00D)
	if c1 == c2 {
		t.Error("single key-bit flip produced identical ciphertext")
	}
}

// Avalanche sanity: flipping one plaintext bit should change roughly
// half the ciphertext bits.
func TestPresentAvalanche(t *testing.T) {
	p := NewPresent([PresentKeySize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	base := p.Encrypt(0x0123456789ABCDEF)
	flipped := p.Encrypt(0x0123456789ABCDEE)
	diff := base ^ flipped
	n := 0
	for diff != 0 {
		n++
		diff &= diff - 1
	}
	if n < 16 || n > 48 {
		t.Errorf("avalanche weight %d, want ≈32", n)
	}
}

func TestPresentEncryptBlockBytes(t *testing.T) {
	p := NewPresent([PresentKeySize]byte{})
	src := make([]byte, 8)
	dst := make([]byte, 8)
	p.EncryptBlock(dst, src)
	want := []byte{0x55, 0x79, 0xC1, 0x38, 0x7B, 0x22, 0x84, 0x45}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("EncryptBlock = %x, want %x", dst, want)
		}
	}
}

func BenchmarkPresentEncrypt(b *testing.B) {
	p := NewPresent([PresentKeySize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		_ = p.Encrypt(uint64(i))
	}
}

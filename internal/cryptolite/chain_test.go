package cryptolite

import (
	"testing"
	"testing/quick"
)

func TestChainStartsAtZero(t *testing.T) {
	if ZeroChain != (ChainHash{}) {
		t.Error("h₀ must be the all-zero hash")
	}
}

func TestChainExtendOrderMatters(t *testing.T) {
	a := ChainExtend(ZeroChain, [][]byte{[]byte("x"), []byte("y")})
	b := ChainExtend(ZeroChain, [][]byte{[]byte("y"), []byte("x")})
	if a == b {
		t.Error("chain must be order-sensitive")
	}
}

// The length prefix must prevent boundary-shifting collisions.
func TestChainEntryBoundaries(t *testing.T) {
	a := ChainExtend(ZeroChain, [][]byte{[]byte("ab"), []byte("c")})
	b := ChainExtend(ZeroChain, [][]byte{[]byte("a"), []byte("bc")})
	c := ChainExtend(ZeroChain, [][]byte{[]byte("abc")})
	if a == b || b == c || a == c {
		t.Error("entry-boundary collision")
	}
}

// Appending in one batch vs. two batches must differ (a batch is a
// single chain link, and the link structure is part of what auditors
// verify), but replaying the same batch sequence must agree.
func TestChainReplayable(t *testing.T) {
	entries := [][]byte{[]byte("sensor"), []byte("recv"), []byte("acmd")}
	one := ChainExtend(ZeroChain, entries)
	two := ChainExtend(ChainExtend(ZeroChain, entries[:1]), entries[1:])
	if one == two {
		t.Error("different batching should yield different chains")
	}
	again := ChainExtend(ZeroChain, entries)
	if one != again {
		t.Error("chain not replayable")
	}
}

func TestChainExtendOne(t *testing.T) {
	d := []byte("entry")
	if ChainExtendOne(ZeroChain, d) != ChainExtend(ZeroChain, [][]byte{d}) {
		t.Error("ChainExtendOne mismatch")
	}
}

// Property: extending from different tops yields different results
// (second-preimage style sanity, not a proof).
func TestChainTopSensitivity(t *testing.T) {
	f := func(seed byte, entry []byte) bool {
		var top ChainHash
		top[0] = seed
		a := ChainExtendOne(top, entry)
		b := ChainExtendOne(ZeroChain, entry)
		if seed == 0 {
			return a == b
		}
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a chain over n entries is injective in each entry — flip a
// bit anywhere, get a different top hash.
func TestChainBitFlip(t *testing.T) {
	f := func(a, b, c []byte, which uint8, pos uint16) bool {
		entries := [][]byte{a, b, c}
		orig := ChainExtend(ZeroChain, entries)
		i := int(which) % 3
		if len(entries[i]) == 0 {
			return true
		}
		mut := append([]byte{}, entries[i]...)
		mut[int(pos)%len(mut)] ^= 1
		mutEntries := [][]byte{a, b, c}
		mutEntries[i] = mut
		return ChainExtend(ZeroChain, mutEntries) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

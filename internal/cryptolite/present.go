package cryptolite

import "encoding/binary"

// PRESENT-80 (Bogdanov et al., CHES 2007) is an ultra-lightweight
// 64-bit block cipher with an 80-bit key and 31 rounds — the class of
// cipher LightMAC recommends for resource-constrained nodes, and the
// natural fit for the paper's 80-bit-key / 64-bit-tag configuration
// (§4). Only encryption is needed: LightMAC never decrypts.

// PresentKeySize is the PRESENT-80 key size in bytes.
const PresentKeySize = 10

// PresentBlockSize is the PRESENT block size in bytes.
const PresentBlockSize = 8

const presentRounds = 31

var presentSBox = [16]byte{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

// Present holds the expanded round keys for one PRESENT-80 key.
type Present struct {
	rk [presentRounds + 1]uint64
}

// NewPresent expands an 80-bit key into the 32 round keys.
//
// The 80-bit key register is held as v1 (bits 79..64, the top 16 bits)
// and v0 (bits 63..0). Per the PRESENT spec, each round the register
// is (1) rotated left by 61 bits, (2) has the S-box applied to its
// leftmost nibble, and (3) has the round counter XORed into bits
// 19..15; the round key is always the leftmost 64 bits (79..16).
func NewPresent(key [PresentKeySize]byte) *Present {
	v1 := uint64(binary.BigEndian.Uint16(key[:2]))
	v0 := binary.BigEndian.Uint64(key[2:])

	var p Present
	for round := uint64(1); ; round++ {
		p.rk[round-1] = v1<<48 | v0>>16 // leftmost 64 bits
		if round > presentRounds {
			break
		}
		// 1. Rotate left 61 == rotate right 19 on the 80-bit value.
		nv0 := v0>>19 | v1<<45 | v0<<61
		nv1 := v0 >> 3 & 0xFFFF
		v0, v1 = nv0, nv1
		// 2. S-box on bits 79..76 (the top nibble of v1).
		v1 = v1&0x0FFF | uint64(presentSBox[v1>>12])<<12
		// 3. Round counter into bits 19..15 (entirely within v0).
		v0 ^= round << 15
	}
	return &p
}

// spTable fuses the S-box and permutation layers: spTable[j][b] is the
// scattered contribution of byte j of the state after substitution and
// permutation. One round then costs 8 table lookups instead of 16
// nibble substitutions plus a 64-step bit scatter — the same
// time/space tradeoff an optimized MCU implementation makes.
var spTable = func() (t [8][256]uint64) {
	for j := 0; j < 8; j++ {
		for b := 0; b < 256; b++ {
			lo := presentSBox[b&0xF]
			hi := presentSBox[b>>4]
			sub := uint64(lo)<<(uint(j)*8) | uint64(hi)<<(uint(j)*8+4)
			t[j][b] = presentPermute(sub)
		}
	}
	return
}()

// Encrypt encrypts one 64-bit block.
func (p *Present) Encrypt(block uint64) uint64 {
	state := block
	for r := 0; r < presentRounds; r++ {
		state ^= p.rk[r]
		state = spTable[0][state&0xFF] |
			spTable[1][state>>8&0xFF] |
			spTable[2][state>>16&0xFF] |
			spTable[3][state>>24&0xFF] |
			spTable[4][state>>32&0xFF] |
			spTable[5][state>>40&0xFF] |
			spTable[6][state>>48&0xFF] |
			spTable[7][state>>56&0xFF]
	}
	return state ^ p.rk[presentRounds]
}

// EncryptBlock encrypts an 8-byte block in big-endian convention.
func (p *Present) EncryptBlock(dst, src []byte) {
	ct := p.Encrypt(binary.BigEndian.Uint64(src))
	binary.BigEndian.PutUint64(dst, ct)
}

func presentSubstitute(s uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		nib := byte(s >> (uint(i) * 4) & 0xF)
		out |= uint64(presentSBox[nib]) << (uint(i) * 4)
	}
	return out
}

func presentPermute(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < 63; i++ {
		out |= (s >> i & 1) << (i * 16 % 63)
	}
	out |= (s >> 63 & 1) << 63 // bit 63 is a fixed point of the permutation
	return out
}

package cryptolite

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testMAC() *LightMAC {
	var k1, k2 [PresentKeySize]byte
	for i := range k1 {
		k1[i] = byte(i + 1)
		k2[i] = byte(0xA0 + i)
	}
	return NewLightMAC(k1, k2)
}

func TestLightMACDeterministic(t *testing.T) {
	m := testMAC()
	msg := []byte("state broadcast from robot 7")
	if m.MAC(msg) != m.MAC(msg) {
		t.Error("MAC not deterministic")
	}
}

func TestLightMACDistinguishesMessages(t *testing.T) {
	m := testMAC()
	msgs := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("b"),
		[]byte("ab"),
		bytes.Repeat([]byte{0}, 5),
		bytes.Repeat([]byte{0}, 6),  // exactly one chunk
		bytes.Repeat([]byte{0}, 7),  // chunk + 1
		bytes.Repeat([]byte{0}, 12), // two chunks
		bytes.Repeat([]byte{0}, 13),
		bytes.Repeat([]byte{1}, 13),
		bytes.Repeat([]byte{0}, 100),
	}
	seen := map[Tag]int{}
	for i, msg := range msgs {
		tag := m.MAC(msg)
		if j, dup := seen[tag]; dup && !bytes.Equal(msgs[i], msgs[j]) {
			t.Errorf("messages %d and %d collide: %x", i, j, tag)
		}
		seen[tag] = i
	}
	// nil and empty are the same message and must agree.
	if m.MAC(nil) != m.MAC([]byte{}) {
		t.Error("nil and empty message disagree")
	}
}

// Padding soundness: a message must never share a tag with its own
// 0x80-extended variant (the classic 10* padding confusion).
func TestLightMACPaddingUnambiguous(t *testing.T) {
	m := testMAC()
	a := []byte{1, 2, 3}
	b := []byte{1, 2, 3, 0x80}
	c := []byte{1, 2, 3, 0x80, 0}
	if m.MAC(a) == m.MAC(b) || m.MAC(b) == m.MAC(c) || m.MAC(a) == m.MAC(c) {
		t.Error("padding-extension collision")
	}
}

func TestLightMACKeySeparation(t *testing.T) {
	var k1, k2 [PresentKeySize]byte
	k1[0] = 1
	k2[0] = 2
	a := NewLightMAC(k1, k2)
	bm := NewLightMAC(k2, k1) // swapped
	msg := []byte("token request")
	if a.MAC(msg) == bm.MAC(msg) {
		t.Error("swapping K1/K2 should change the tag")
	}
}

func TestLightMACVerify(t *testing.T) {
	m := testMAC()
	msg := []byte("authenticator")
	tag := m.MAC(msg)
	if !m.Verify(msg, tag) {
		t.Error("genuine tag rejected")
	}
	bad := tag
	bad[0] ^= 1
	if m.Verify(msg, bad) {
		t.Error("tampered tag accepted")
	}
	if m.Verify(append(msg, 'x'), tag) {
		t.Error("tag accepted for extended message")
	}
}

// Property: flipping any single bit of the message changes the tag.
func TestLightMACBitFlipProperty(t *testing.T) {
	m := testMAC()
	f := func(msg []byte, pos uint16) bool {
		if len(msg) == 0 {
			return true
		}
		i := int(pos) % len(msg)
		orig := m.MAC(msg)
		mut := append([]byte{}, msg...)
		mut[i] ^= 1 << (pos % 8)
		return m.MAC(mut) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewLightMACFromSecretStable(t *testing.T) {
	secret := []byte("mission key material")
	a := NewLightMACFromSecret(secret)
	b := NewLightMACFromSecret(secret)
	msg := []byte("x")
	if a.MAC(msg) != b.MAC(msg) {
		t.Error("same secret must derive same MAC keys")
	}
	c := NewLightMACFromSecret([]byte("different"))
	if a.MAC(msg) == c.MAC(msg) {
		t.Error("different secrets should not agree")
	}
}

// The derivation must not alias K1 and K2.
func TestNewLightMACFromSecretDomainSeparation(t *testing.T) {
	m := NewLightMACFromSecret([]byte("s"))
	if m.k1 == m.k2 {
		t.Error("K1 and K2 alias")
	}
	var zero [8]byte
	if m.k1.Encrypt(0) == m.k2.Encrypt(0) {
		t.Error("derived keys encrypt identically")
	}
	_ = zero
}

func BenchmarkLightMAC_27B(b *testing.B) { benchMAC(b, 27) } // Olfati-Saber state msg
func BenchmarkLightMAC_39B(b *testing.B) { benchMAC(b, 39) } // max token-ish message
func BenchmarkLightMAC_2KB(b *testing.B) { benchMAC(b, 2048) }

func benchMAC(b *testing.B, n int) {
	m := testMAC()
	msg := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.MAC(msg)
	}
}

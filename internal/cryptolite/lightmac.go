package cryptolite

import "encoding/binary"

// LightMAC (Luykx, Preneel, Tischhauser, Yasuda 2016) is a
// parallelizable MAC mode for lightweight block ciphers whose security
// bound does not degrade with message length. RoboRebound configures
// it with 80-bit keys and 64-bit tags (§4); we instantiate it over
// PRESENT-80 with an s = 16-bit block counter, so each cipher call
// absorbs 48 message bits.
//
//	V    = ⊕_{i=1..t-1} E_{K1}( iₛ ‖ M[i] )        (full 48-bit chunks)
//	tag  = E_{K2}( V ⊕ pad(M[t]) )                 (10*-padded tail)
//
// Tokens, token requests, and authenticators in this repository are
// all authenticated with this construction.

// TagSize is the LightMAC tag size in bytes (64-bit tags, §4).
const TagSize = 8

// Tag is a LightMAC authentication tag.
type Tag [TagSize]byte

const (
	lmCounterBytes = 2                                 // s = 16 bits
	lmChunkBytes   = PresentBlockSize - lmCounterBytes // 6 bytes per cipher call
)

// LightMAC holds the two expanded cipher keys.
type LightMAC struct {
	k1, k2 *Present
}

// NewLightMAC constructs a LightMAC instance from two independent
// 80-bit PRESENT keys.
func NewLightMAC(k1, k2 [PresentKeySize]byte) *LightMAC {
	return &LightMAC{k1: NewPresent(k1), k2: NewPresent(k2)}
}

// NewLightMACFromSecret derives the two PRESENT keys from arbitrary
// key material via SHA-1 (domain-separated), mirroring how the mission
// key — delivered as a single secret by LOADMISSIONKEY — keys every
// MAC on the trusted nodes.
func NewLightMACFromSecret(secret []byte) *LightMAC {
	var k1, k2 [PresentKeySize]byte
	h1 := SHA1(append(append([]byte{}, secret...), 0x01))
	h2 := SHA1(append(append([]byte{}, secret...), 0x02))
	copy(k1[:], h1[:PresentKeySize])
	copy(k2[:], h2[:PresentKeySize])
	return &LightMAC{k1: NewPresent(k1), k2: NewPresent(k2)}
}

// MAC computes the 64-bit tag over msg.
func (m *LightMAC) MAC(msg []byte) Tag {
	var v uint64
	var block [PresentBlockSize]byte
	ctr := uint16(1)
	// Absorb all full chunks; the final (possibly empty, possibly
	// partial) chunk goes through the K2 call below.
	for len(msg) > lmChunkBytes {
		binary.BigEndian.PutUint16(block[:], ctr)
		copy(block[lmCounterBytes:], msg[:lmChunkBytes])
		v ^= m.k1.Encrypt(binary.BigEndian.Uint64(block[:]))
		msg = msg[lmChunkBytes:]
		ctr++
	}
	// pad(M[t]) = M[t] ‖ 0x80 ‖ 0…  (10* padding on the byte level)
	var last [PresentBlockSize]byte
	n := copy(last[:], msg)
	last[n] = 0x80
	final := m.k2.Encrypt(v ^ binary.BigEndian.Uint64(last[:]))
	var tag Tag
	binary.BigEndian.PutUint64(tag[:], final)
	return tag
}

// Verify reports whether tag is the correct MAC for msg. Comparison is
// constant-time; on a real a-node this prevents byte-at-a-time tag
// forgery via timing.
func (m *LightMAC) Verify(msg []byte, tag Tag) bool {
	want := m.MAC(msg)
	var diff byte
	for i := range want {
		diff |= want[i] ^ tag[i]
	}
	return diff == 0
}

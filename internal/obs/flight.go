package obs

import (
	"sort"

	"roborebound/internal/wire"
)

// DefaultFlightRing is the per-robot, per-plane ring capacity used by
// the chaos harness.
const DefaultFlightRing = 64

// ring is a fixed-capacity event ring. Events carry a recorder-global
// sequence number so two rings for the same robot can be merged back
// into emission order when dumped.
type ring struct {
	buf   []seqEvent
	next  int
	total int
}

type seqEvent struct {
	seq int
	ev  Event
}

func (r *ring) push(seq int, e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, seqEvent{seq, e})
	} else {
		r.buf[r.next] = seqEvent{seq, e}
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// FlightRecorder is a Tracer that keeps each robot's last N events in
// bounded memory — the black box the fault-injection checker dumps
// when it latches a violation.
//
// Each robot gets two independent rings: one for protocol-plane
// events (audit rounds, tokens, Safe Mode) and one for the
// radio-plane frame events, which outnumber protocol events by
// orders of magnitude. Ringing them together would let frame traffic
// evict the exact token/round history a violation post-mortem needs.
type FlightRecorder struct {
	n     int
	seq   int
	rings map[wire.RobotID]*robotRings
}

type robotRings struct {
	protocol ring
	radio    ring
}

// NewFlightRecorder returns a recorder keeping the last n events of
// each plane per robot. n <= 0 selects DefaultFlightRing.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRing
	}
	return &FlightRecorder{n: n, rings: make(map[wire.RobotID]*robotRings)}
}

// Emit implements Tracer.
func (f *FlightRecorder) Emit(e Event) {
	rr := f.rings[e.Robot]
	if rr == nil {
		rr = &robotRings{
			protocol: ring{buf: make([]seqEvent, 0, f.n)},
			radio:    ring{buf: make([]seqEvent, 0, f.n)},
		}
		f.rings[e.Robot] = rr
	}
	f.seq++
	if e.Kind.FramePlane() {
		rr.radio.push(f.seq, e)
	} else {
		rr.protocol.push(f.seq, e)
	}
}

// Events returns the retained events for one robot, both planes
// merged back into emission order. Nil if the robot never emitted.
func (f *FlightRecorder) Events(id wire.RobotID) []Event {
	rr := f.rings[id]
	if rr == nil {
		return nil
	}
	merged := make([]seqEvent, 0, len(rr.protocol.buf)+len(rr.radio.buf))
	merged = append(merged, rr.protocol.buf...)
	merged = append(merged, rr.radio.buf...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })
	out := make([]Event, len(merged))
	for i, se := range merged {
		out[i] = se.ev
	}
	return out
}

// Dropped returns how many of the robot's events have been evicted
// from its rings (total emitted minus retained).
func (f *FlightRecorder) Dropped(id wire.RobotID) int {
	rr := f.rings[id]
	if rr == nil {
		return 0
	}
	return rr.protocol.total - len(rr.protocol.buf) +
		rr.radio.total - len(rr.radio.buf)
}

// Robots returns the IDs with retained events, ascending.
func (f *FlightRecorder) Robots() []wire.RobotID {
	ids := make([]wire.RobotID, 0, len(f.rings))
	for id := range f.rings {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

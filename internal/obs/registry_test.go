package obs

import (
	"sort"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge should stay 0")
	}
	h := r.Histogram("z", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	r.RegisterGaugeFunc("f", func() float64 { return 1 })
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rounds")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("rounds") != c {
		t.Fatal("same name should return same counter")
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7 (last write wins)", g.Value())
	}
	h := r.Histogram("lat", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 565 {
		t.Fatalf("histogram count=%d sum=%v, want 4/565", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in scrambled order; snapshot must still sort.
		r.Counter("z.last").Add(1)
		r.Gauge("a.first").Set(2)
		r.Histogram("m.mid", []float64{1, 10}).Observe(3)
		r.RegisterGaugeFunc("b.fn", func() float64 { return 4 })
		r.Counter("c.count").Add(9)
		return r
	}
	snap := build().Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatalf("snapshot not sorted: %v", snap)
	}
	// Two registries built identically snapshot identically.
	other := build().Snapshot()
	if len(snap) != len(other) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(snap), len(other))
	}
	for i := range snap {
		if snap[i] != other[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, snap[i], other[i])
		}
	}
}

func TestSnapshotHistogramExpansion(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 500} {
		h.Observe(v)
	}
	got := make(map[string]float64)
	for _, s := range r.Snapshot() {
		got[s.Name] = s.Value
	}
	want := map[string]float64{
		"lat.bucket.10":   2, // 5 and 10 (upper-bound inclusive)
		"lat.bucket.100":  1, // 50
		"lat.bucket.+inf": 1, // 500
		"lat.count":       4,
		"lat.sum":         565,
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("%s = %v, want %v (snapshot %v)", name, got[name], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d: %v", len(got), len(want), got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := []Sample{{"x", 1}, {"y", 2}}
	b := []Sample{{"y", 3}, {"z", 4}}
	got := MergeSnapshots(a, b)
	want := []Sample{{"x", 1}, {"y", 5}, {"z", 4}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}

func TestBucketQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	counts := []uint64{0, 3, 0, 1, 0} // 3 obs in (1,2], 1 in (4,8]

	// Malformed inputs return 0, never NaN or a panic.
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty bounds = %v, want 0", got)
	}
	if got := BucketQuantile(bounds, []uint64{1, 2}, 0.5); got != 0 {
		t.Errorf("mismatched counts = %v, want 0", got)
	}
	if got := BucketQuantile(bounds, make([]uint64, 5), 0.5); got != 0 {
		t.Errorf("all-zero counts = %v, want 0", got)
	}

	// q is clamped to [0, 1].
	lo := BucketQuantile(bounds, counts, -5)
	hi := BucketQuantile(bounds, counts, 99)
	if lo <= 1 || lo > 2 {
		t.Errorf("q<0 = %v, want in (1, 2]", lo)
	}
	if hi <= 4 || hi > 8 {
		t.Errorf("q>1 = %v, want in (4, 8]", hi)
	}

	// Median interpolates inside the (1, 2] bucket.
	if got := BucketQuantile(bounds, counts, 0.5); got <= 1 || got > 2 {
		t.Errorf("p50 = %v, want in (1, 2]", got)
	}

	// Mass in the overflow bucket reports the last finite bound.
	over := []uint64{0, 0, 0, 0, 4}
	if got := BucketQuantile(bounds, over, 0.99); got != 8 {
		t.Errorf("overflow p99 = %v, want 8 (last bound)", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // (0, 10] bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // (100, 1000] bucket
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 10 {
		t.Errorf("p50 = %v, want in (0, 10]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 100 || p99 > 1000 {
		t.Errorf("p99 = %v, want in (100, 1000]", p99)
	}
	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

package obs

import "fmt"

// ShardCapture is a Tracer front for the sharded tick phase. A serial
// tick loop emits each robot's events interleaved in ascending actor
// ID; a sharded loop emits them in whatever order the shards race to.
// ShardCapture restores the serial order without locks: during a
// capture window (Begin … Flush) each event parks in a per-robot
// buffer — every event emitted from a robot's Tick carries that
// robot's own ID, and a robot is ticked by exactly one shard, so no
// two goroutines ever touch the same buffer — and Flush forwards the
// buffers to the underlying sink in ascending robot ID, exactly the
// serial interleaving. Outside a window it is a transparent
// passthrough, so one ShardCapture can front a sim's tracer for its
// whole lifetime.
type ShardCapture struct {
	sink   Tracer
	active bool
	bufs   [][]Event // indexed by raw robot ID
}

// NewShardCapture wraps sink (which must be non-nil; callers with no
// tracer simply don't build a capture).
func NewShardCapture(sink Tracer) *ShardCapture {
	if sink == nil {
		panic("obs: ShardCapture over nil sink")
	}
	return &ShardCapture{sink: sink}
}

// Begin opens a capture window for robots with IDs in [0, maxID].
func (s *ShardCapture) Begin(maxID int) {
	if s.active {
		panic("obs: ShardCapture.Begin while already capturing")
	}
	if need := maxID + 1; len(s.bufs) < need {
		grown := make([][]Event, need)
		copy(grown, s.bufs)
		s.bufs = grown
	}
	s.active = true
}

// Emit implements Tracer. Inside a capture window the event parks in
// its robot's buffer; outside it forwards straight to the sink.
func (s *ShardCapture) Emit(e Event) {
	if !s.active {
		s.sink.Emit(e)
		return
	}
	id := int(e.Robot)
	if id >= len(s.bufs) {
		// An emit for a robot outside the declared window is a harness
		// bug, not a recoverable condition: silently forwarding would
		// scramble the serial order the capture exists to preserve.
		panic(fmt.Sprintf("obs: ShardCapture got event for robot %d outside window of %d", id, len(s.bufs)))
	}
	s.bufs[id] = append(s.bufs[id], e)
}

// Flush closes the window, forwarding parked events to the sink in
// ascending robot ID (per robot, in emission order).
func (s *ShardCapture) Flush() {
	if !s.active {
		panic("obs: ShardCapture.Flush without Begin")
	}
	s.active = false
	for id := range s.bufs {
		for _, e := range s.bufs[id] {
			s.sink.Emit(e)
		}
		s.bufs[id] = s.bufs[id][:0]
	}
}

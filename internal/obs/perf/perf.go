// Package perf is the wall-clock sibling of the tick-domain tracer
// (internal/obs): phase-attributed wall-clock timing for the tick
// pipeline, runtime telemetry, and sweep-level latency percentiles.
//
// The split matters. Everything in internal/obs lives in the tick
// domain — deterministic, byte-identical across runs, part of the
// differential-test contract. Wall-clock time is inherently
// nondeterministic, so it lives here, behind one seam: every
// wall-clock read in the module flows through this package's injected
// Clock (the //rebound:wallclock hatches below are the module's only
// ones outside analyzer fixtures). The plane is observation-only —
// attaching a PhaseTimer changes no simulation output, pinned by the
// perf differential tests — and the trusted packages (the TCB) never
// import it: trusted's import surface is a frozen stdlib allowlist,
// and timing trusted-node internals would mean instrumenting the very
// code whose integrity the protocol assumes.
//
// A nil *PhaseTimer is valid and means "perf disabled": Start/End on
// nil are allocation-free no-ops, so instrumented call sites never
// guard. The enabled path is allocation-free too (atomic tallies into
// fixed log2 buckets — both pinned by AllocsPerRun and enforced by
// reboundlint's hotpath analyzer), which is what keeps whole-sim
// instrumentation overhead within the ≤3% bench-gate ceiling.
package perf

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"roborebound/internal/obs"
)

// Clock reads monotonic nanoseconds on some fixed timebase. The
// production clock is Now; tests inject deterministic fakes, which is
// how timer math is tested exactly despite measuring wall time.
type Clock func() int64

// perfBase anchors the package clock at process start. time.Since on
// it reads Go's monotonic clock, so Now never goes backwards.
var perfBase = time.Now() //rebound:wallclock the perf plane's single wall-clock timebase; every other package injects perf.Now (or a test fake) instead of reading time itself

// Now returns monotonic nanoseconds since process start — the
// module's one production wall-clock read. loadmodel's latency
// measurement, runner's per-cell elapsed, and the CLI's sweep
// progress all route through here (or an injected Clock).
func Now() int64 {
	return int64(time.Since(perfBase)) //rebound:wallclock the perf plane's single wall-clock read; see perfBase
}

// Phase identifies one stage of the tick pipeline. The first block
// holds the engine-level stages — non-overlapping spans whose sum is
// the whole timed pipeline — and the second block holds nested
// attributions (timed inside a top-level span; informative, never
// added to the pipeline total).
type Phase uint8

const (
	// Top-level stages of sim.Engine.StepOnce, in pipeline order.
	PhaseRadioDeliver Phase = iota // Medium.Deliver + per-actor frame fan-out
	PhaseActorTick                 // per-robot protocol tick (serial loop, or the sharded parallel span)
	PhaseSerialPost                // sharded ticks only: ID-ordered post-pass for SerialTicker actors
	PhaseShardMerge                // sharded ticks only: trace-capture flush + staged-send merge
	PhasePhysics                   // World.Step: integration + crash detection
	PhaseObservers                 // per-tick observer callbacks (checker, samplers)

	// Nested attributions inside the stages above.
	PhaseSpatialBuild   // uniform-grid rebuilds (radio Deliver + world crash detection)
	PhaseAuditServe     // core: one audit request served on the uncached path (or refused pre-verdict)
	PhaseAuditCacheHit  // core: cached serve — verdict reused, replay skipped
	PhaseAuditCacheMiss // core: cache-missed serve — full replay + store
	PhaseChainAppend    // core: audit-log appends (chain-window maintenance); sampled via EndSampled

	NumPhases // array bound, not a phase
)

var phaseNames = [NumPhases]string{
	"radio-deliver",
	"actor-tick",
	"serial-post",
	"shard-merge",
	"physics",
	"observers",
	"spatial-build",
	"audit-serve",
	"audit-cache-hit",
	"audit-cache-miss",
	"chain-append",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Nested reports whether the phase is timed inside a top-level
// pipeline stage (and so is excluded from PipelineTotalNs).
func (p Phase) Nested() bool { return p > PhaseObservers && p < NumPhases }

// timerBuckets is the number of log2 duration buckets: bucket 0 holds
// 0 ns, bucket i holds [2^(i-1), 2^i) ns, and the last bucket
// overflows at ~2^38 ns (≈4.6 min) — far beyond any single phase span.
const timerBuckets = 40

// LogNsBounds returns the ascending power-of-two nanosecond upper
// bounds matching the PhaseTimer's internal buckets. The
// obs.Histogram-based consumers (loadmodel's latency distributions,
// the SweepMeter) use the same bounds so every latency quantile in
// the module shares one resolution.
func LogNsBounds() []float64 {
	b := make([]float64, timerBuckets-1)
	for i := range b {
		b[i] = float64(uint64(1) << uint(i))
	}
	return b
}

// phaseStat is one phase's tallies. Atomics, because core.Engine
// phases (audit serve, chain append) execute inside sharded tick
// goroutines while the engine-level phases run on the engine
// goroutine — one timer serves both without locks.
type phaseStat struct {
	count   atomic.Uint64
	totalNs atomic.Uint64
	bucket  [timerBuckets]atomic.Uint64
}

// PhaseTimer accumulates wall-clock spans per pipeline phase. One
// timer instruments one simulation; attach it via SimConfig.Perf (or
// directly with the SetPerf hooks on sim.Engine, sim.World,
// radio.Medium, and core.Engine). Nil means disabled.
type PhaseTimer struct {
	clock Clock
	// spans, when non-nil, additionally records every (phase, start,
	// duration) span for the merged Perfetto export. Opt-in: recording
	// takes a mutex and eventually allocates, so the overhead-gated
	// steady state runs with no recorder attached.
	spans *SpanRecorder
	stat  [NumPhases]phaseStat
}

// NewPhaseTimer returns a timer reading the given clock (nil = the
// package clock, Now).
func NewPhaseTimer(clock Clock) *PhaseTimer {
	if clock == nil {
		clock = Now
	}
	return &PhaseTimer{clock: clock}
}

// RecordSpans attaches a span recorder for trace export (nil
// detaches). Attach before the run; not safe to swap mid-tick.
func (t *PhaseTimer) RecordSpans(r *SpanRecorder) {
	if t != nil {
		t.spans = r
	}
}

// Start begins a span: it returns the clock reading End expects. On a
// nil (disabled) timer it returns 0 without touching the clock.
//
//rebound:hotpath called once per pipeline stage per tick and per audit serve at swarm scale; must stay allocation-free enabled and disabled
func (t *PhaseTimer) Start() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// End closes a span opened by Start and attributes it to phase p.
// No-op on a nil timer; negative spans (a clock fake running
// backwards) clamp to 0.
//
//rebound:hotpath called once per pipeline stage per tick and per audit serve at swarm scale; must stay allocation-free enabled and disabled
func (t *PhaseTimer) End(p Phase, start int64) {
	if t == nil {
		return
	}
	d := t.clock() - start
	if d < 0 {
		d = 0
	}
	s := &t.stat[p]
	s.count.Add(1)
	s.totalNs.Add(uint64(d))
	s.bucket[bucketIndex(d)].Add(1)
	if rec := t.spans; rec != nil {
		rec.record(p, start, d)
	}
}

// EndSampled closes a span opened by Start and attributes it to phase
// p as `weight` spans of the measured duration — the sampled-profiler
// contract for ultra-hot call sites (core's per-entry chain appends):
// time every weight-th operation, scale it up, and pay the two clock
// reads at 1/weight the rate. Counts and totals stay estimates of the
// full population; percentiles come from the timed sample. No-op on a
// nil timer; weight 0 records nothing.
//
//rebound:hotpath called once per sampled chain append at swarm scale; must stay allocation-free enabled and disabled
func (t *PhaseTimer) EndSampled(p Phase, start int64, weight uint64) {
	if t == nil || weight == 0 {
		return
	}
	d := t.clock() - start
	if d < 0 {
		d = 0
	}
	s := &t.stat[p]
	s.count.Add(weight)
	s.totalNs.Add(uint64(d) * weight)
	s.bucket[bucketIndex(d)].Add(weight)
	if rec := t.spans; rec != nil {
		rec.record(p, start, d) // the one measured span, not the scaled estimate
	}
}

// bucketIndex maps a non-negative duration to its log2 bucket.
func bucketIndex(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= timerBuckets {
		b = timerBuckets - 1
	}
	return b
}

// PhaseReport is one phase's aggregated timings.
type PhaseReport struct {
	Phase   Phase
	Name    string
	Nested  bool
	Count   uint64
	TotalNs uint64
	MeanNs  float64
	P50Ns   float64
	P95Ns   float64
	P99Ns   float64
}

// Report returns the per-phase aggregates in pipeline order, omitting
// phases with no observations. Quantiles are log2-bucket estimates
// (see obs.BucketQuantile); no samples are retained.
func (t *PhaseTimer) Report() []PhaseReport {
	if t == nil {
		return nil
	}
	bounds := LogNsBounds()
	counts := make([]uint64, timerBuckets)
	var out []PhaseReport
	for p := Phase(0); p < NumPhases; p++ {
		s := &t.stat[p]
		n := s.count.Load()
		if n == 0 {
			continue
		}
		for i := range counts {
			counts[i] = s.bucket[i].Load()
		}
		total := s.totalNs.Load()
		out = append(out, PhaseReport{
			Phase:   p,
			Name:    p.String(),
			Nested:  p.Nested(),
			Count:   n,
			TotalNs: total,
			MeanNs:  float64(total) / float64(n),
			P50Ns:   obs.BucketQuantile(bounds, counts, 0.50),
			P95Ns:   obs.BucketQuantile(bounds, counts, 0.95),
			P99Ns:   obs.BucketQuantile(bounds, counts, 0.99),
		})
	}
	return out
}

// PipelineTotalNs sums the top-level (non-nested, non-overlapping)
// pipeline phases — the denominator for "% of pipeline" breakdowns.
func (t *PhaseTimer) PipelineTotalNs() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for p := PhaseRadioDeliver; p <= PhaseObservers; p++ {
		total += t.stat[p].totalNs.Load()
	}
	return total
}

// Span is one recorded (phase, start, duration) wall-clock span.
type Span struct {
	Phase   Phase
	StartNs int64
	DurNs   int64
}

// SpanRecorder collects individual spans for the merged Perfetto
// export, bounded so a long run cannot grow it without limit (spans
// past the cap are counted, not stored). It is mutex-guarded because
// nested core phases record from shard goroutines.
type SpanRecorder struct {
	mu      sync.Mutex
	limit   int
	spans   []Span
	dropped uint64
}

// DefaultSpanLimit bounds a recorder constructed with limit <= 0.
const DefaultSpanLimit = 1 << 16

// NewSpanRecorder returns a recorder holding at most limit spans
// (<= 0 selects DefaultSpanLimit).
func NewSpanRecorder(limit int) *SpanRecorder {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &SpanRecorder{limit: limit}
}

func (r *SpanRecorder) record(p Phase, start, dur int64) {
	r.mu.Lock()
	if len(r.spans) < r.limit {
		r.spans = append(r.spans, Span{Phase: p, StartNs: start, DurNs: dur})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped returns how many spans the cap discarded.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

package perf

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"roborebound/internal/obs"
)

// WallClockPID is the synthetic Chrome-trace process ID carrying the
// wall-clock pipeline track in a merged export. Robot processes use
// their uint16 IDs, so any value above 65535 cannot collide.
const WallClockPID = 1 << 20

// jsonFloat renders v like the obs exporters do: integral values as
// integers, everything else shortest-round-trip. NaN/Inf cannot occur
// — span math is integer nanoseconds and TickMapping.Micros is
// documented finite.
func jsonFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMergedTrace writes one Chrome trace-event document combining
// the tick-domain robot tracks (identical to obs.WriteChromeTrace)
// with a wall-clock pipeline track built from the recorder's spans:
// one synthetic process, one thread per phase, complete ("X") slices.
//
// The two tracks share a µs axis but not a timebase: tick-domain
// timestamps are simulated time from tick 0 (TickMapping), wall-clock
// timestamps are measured time from the timer's clock origin. At the
// chaos plane's real-time tick mapping the tracks land on comparable
// scales; either way Perfetto renders them side by side, which is the
// point — where simulated activity clusters versus where hardware
// time goes. A nil recorder (or one with no spans) degrades to the
// tick-domain document plus the empty wall-clock process.
func WriteMergedTrace(w io.Writer, events []obs.Event, m obs.TickMapping, rec *SpanRecorder) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	for _, line := range obs.ChromeTraceLines(events, m) {
		emit(line)
	}

	emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"wall-clock pipeline"}}`, WallClockPID))
	spans := rec.Spans()
	var seen [NumPhases]bool
	for _, s := range spans {
		if s.Phase < NumPhases {
			seen[s.Phase] = true
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		if seen[p] {
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
				WallClockPID, int(p)+1, p.String()))
		}
	}
	for _, s := range spans {
		if s.Phase >= NumPhases {
			continue
		}
		dur := s.DurNs
		if dur < 0 {
			dur = 0
		}
		emit(fmt.Sprintf(`{"ph":"X","name":%q,"pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
			s.Phase.String(), WallClockPID, int(s.Phase)+1,
			jsonFloat(float64(s.StartNs)/1e3), jsonFloat(float64(dur)/1e3)))
	}

	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePhaseJSON writes the phase-breakdown report (plus runtime
// telemetry, when a sampler is supplied) as a JSON document with a
// fixed field order. Phase entries follow Report's pipeline order.
func WritePhaseJSON(w io.Writer, t *PhaseTimer, rt *RuntimeSampler) error {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"pipeline_total_ns\": %d,\n", t.PipelineTotalNs())
	b.WriteString("  \"phases\": [")
	for i, p := range t.Report() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    {\"phase\": %q, \"nested\": %v, \"count\": %d, \"total_ns\": %d, "+
			"\"mean_ns\": %s, \"p50_ns\": %s, \"p95_ns\": %s, \"p99_ns\": %s}",
			p.Name, p.Nested, p.Count, p.TotalNs,
			jsonFloat(p.MeanNs), jsonFloat(p.P50Ns), jsonFloat(p.P95Ns), jsonFloat(p.P99Ns))
	}
	b.WriteString("\n  ]")
	if rt != nil {
		r := rt.Report()
		fmt.Fprintf(&b, ",\n  \"runtime\": {\"samples\": %d, \"heap_live_bytes\": %d, \"heap_live_max_bytes\": %d, "+
			"\"goroutines\": %d, \"goroutines_max\": %d, \"gc_cycles\": %d, "+
			"\"gc_pause_p50_ns\": %s, \"gc_pause_p95_ns\": %s, \"gc_pause_p99_ns\": %s}",
			r.Samples, r.HeapLiveBytes, r.HeapLiveMax,
			r.Goroutines, r.GoroutinesMax, r.GCCycles,
			jsonFloat(r.GCPauseP50Ns), jsonFloat(r.GCPauseP95Ns), jsonFloat(r.GCPauseP99Ns))
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

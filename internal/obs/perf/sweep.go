package perf

import (
	"sync"

	"roborebound/internal/obs"
)

// SweepMeter aggregates per-cell wall-clock latency and worker
// utilization for one experiment sweep run on runner.Map. The runner
// calls Now/CellDone from worker goroutines, so the meter is
// mutex-guarded; a nil meter is valid and disables metering (every
// method is nil-safe, and Now falls back to the package clock so the
// runner can time cells unconditionally).
//
// Utilization is busy-time over capacity: Σ cell durations divided by
// (wall time × workers). Cells that never ran (context cancelled
// before dispatch) contribute nothing to either side; cells that
// panicked still ran, so their elapsed time counts.
type SweepMeter struct {
	clock Clock

	mu      sync.Mutex
	workers int
	startNs int64
	running bool
	wallNs  int64
	busyNs  int64
	cells   int
	hist    *obs.Histogram // per-cell latency, log2 ns buckets
}

// NewSweepMeter returns a meter reading the given clock (nil = Now).
func NewSweepMeter(clock Clock) *SweepMeter {
	if clock == nil {
		clock = Now
	}
	return &SweepMeter{clock: clock, hist: obs.NewHistogram(LogNsBounds())}
}

// Now reads the meter's clock; on a nil meter it reads the package
// clock, so callers can time unconditionally through the one seam.
func (m *SweepMeter) Now() int64 {
	if m == nil {
		return Now()
	}
	return m.clock()
}

// Begin opens a wall-time window with the given worker-pool size.
// runner.Map calls it at dispatch; multiple Map calls on one meter
// accumulate (wall windows sum, workers last-wins).
func (m *SweepMeter) Begin(workers int) {
	if m == nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	m.mu.Lock()
	m.workers = workers
	m.startNs = m.clock()
	m.running = true
	m.mu.Unlock()
}

// End closes the wall-time window opened by Begin.
func (m *SweepMeter) End() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.running {
		m.wallNs += m.clock() - m.startNs
		m.running = false
	}
	m.mu.Unlock()
}

// CellDone records one completed cell's duration (clamped at 0).
func (m *SweepMeter) CellDone(durNs int64) {
	if m == nil {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	m.mu.Lock()
	m.cells++
	m.busyNs += durNs
	m.hist.Observe(float64(durNs))
	m.mu.Unlock()
}

// SweepReport is the sweep-level summary.
type SweepReport struct {
	Cells       int
	Workers     int
	WallNs      int64
	BusyNs      int64
	Utilization float64 // busy / (wall × workers), clamped to [0, 1]
	MeanNs      float64
	P50Ns       float64
	P95Ns       float64
	P99Ns       float64
}

// Report summarizes the meter so far (a still-open window counts up
// to the current clock). Zero value on nil.
func (m *SweepMeter) Report() SweepReport {
	if m == nil {
		return SweepReport{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := SweepReport{Cells: m.cells, Workers: m.workers, WallNs: m.wallNs, BusyNs: m.busyNs}
	if m.running {
		r.WallNs += m.clock() - m.startNs
	}
	if r.WallNs > 0 && m.workers > 0 {
		r.Utilization = float64(m.busyNs) / (float64(r.WallNs) * float64(m.workers))
		if r.Utilization > 1 {
			r.Utilization = 1
		}
	}
	if m.cells > 0 {
		r.MeanNs = float64(m.busyNs) / float64(m.cells)
		r.P50Ns = m.hist.Quantile(0.50)
		r.P95Ns = m.hist.Quantile(0.95)
		r.P99Ns = m.hist.Quantile(0.99)
	}
	return r
}

package perf

import (
	"runtime/metrics"

	"roborebound/internal/obs"
)

// Tracked runtime/metrics names. Fixed set, sampled in one
// metrics.Read into a preallocated slice, so a sample is cheap enough
// to take every few ticks.
const (
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricGoroutines = "/sched/goroutines:goroutines"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/gc/pauses:seconds"
)

// RuntimeSampler polls the Go runtime (live heap, goroutine count, GC
// cycles, GC pause distribution) at a tick cadence. It is
// single-goroutine by construction — the simulation drives Sample
// from a per-tick engine observer on the engine goroutine — and
// nil-safe like the rest of the plane. Like the PhaseTimer it is
// observation-only: sampling reads runtime state and writes none.
type RuntimeSampler struct {
	every   int
	sample  []metrics.Sample
	samples uint64

	heapLast, heapMax             uint64
	goroutinesLast, goroutinesMax uint64
	gcCycles                      uint64
	pauses                        *metrics.Float64Histogram
}

// NewRuntimeSampler returns a sampler that callers should drive every
// `every` ticks (<= 0 selects 8, i.e. every 2 s at the chaos plane's
// 4 ticks/s).
func NewRuntimeSampler(every int) *RuntimeSampler {
	if every <= 0 {
		every = 8
	}
	s := &RuntimeSampler{
		every: every,
		sample: []metrics.Sample{
			{Name: metricHeapBytes},
			{Name: metricGoroutines},
			{Name: metricGCCycles},
			{Name: metricGCPauses},
		},
	}
	return s
}

// Every returns the configured tick cadence (0 on nil).
func (s *RuntimeSampler) Every() int {
	if s == nil {
		return 0
	}
	return s.every
}

// Sample takes one reading. No-op on nil.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	metrics.Read(s.sample)
	s.samples++
	if v := s.sample[0].Value; v.Kind() == metrics.KindUint64 {
		s.heapLast = v.Uint64()
		s.heapMax = max(s.heapMax, s.heapLast)
	}
	if v := s.sample[1].Value; v.Kind() == metrics.KindUint64 {
		s.goroutinesLast = v.Uint64()
		s.goroutinesMax = max(s.goroutinesMax, s.goroutinesLast)
	}
	if v := s.sample[2].Value; v.Kind() == metrics.KindUint64 {
		s.gcCycles = v.Uint64()
	}
	if v := s.sample[3].Value; v.Kind() == metrics.KindFloat64Histogram {
		s.pauses = v.Float64Histogram()
	}
}

// RuntimeReport summarizes the sampled runtime telemetry. Pause
// quantiles are bucket estimates over the runtime's cumulative pause
// histogram (whole-process, not just the sampled window).
type RuntimeReport struct {
	Samples        uint64
	HeapLiveBytes  uint64 // last sample
	HeapLiveMax    uint64 // max across samples
	Goroutines     uint64 // last sample
	GoroutinesMax  uint64 // max across samples
	GCCycles       uint64 // cumulative at last sample
	GCPauseP50Ns   float64
	GCPauseP95Ns   float64
	GCPauseP99Ns   float64
	GCPauseSamples uint64 // pause count behind the quantiles
}

// Report returns the aggregate telemetry (zero value on nil or if
// Sample was never called).
func (s *RuntimeSampler) Report() RuntimeReport {
	if s == nil {
		return RuntimeReport{}
	}
	r := RuntimeReport{
		Samples:       s.samples,
		HeapLiveBytes: s.heapLast,
		HeapLiveMax:   s.heapMax,
		Goroutines:    s.goroutinesLast,
		GoroutinesMax: s.goroutinesMax,
		GCCycles:      s.gcCycles,
	}
	if h := s.pauses; h != nil && len(h.Buckets) == len(h.Counts)+1 && len(h.Buckets) >= 2 {
		// runtime histograms carry boundary i..i+1 per bucket, often with
		// ±Inf at the ends; obs.BucketQuantile wants upper bounds for all
		// but the overflow bucket. Seconds scale to nanoseconds.
		bounds := make([]float64, len(h.Counts)-1)
		for i := range bounds {
			bounds[i] = h.Buckets[i+1] * 1e9
		}
		for _, c := range h.Counts {
			r.GCPauseSamples += c
		}
		r.GCPauseP50Ns = obs.BucketQuantile(bounds, h.Counts, 0.50)
		r.GCPauseP95Ns = obs.BucketQuantile(bounds, h.Counts, 0.95)
		r.GCPauseP99Ns = obs.BucketQuantile(bounds, h.Counts, 0.99)
	}
	return r
}

package perf

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"roborebound/internal/obs"
)

// fakeClock returns a Clock that replays the given readings in order,
// then keeps returning the last one.
func fakeClock(readings ...int64) Clock {
	i := 0
	return func() int64 {
		if i < len(readings) {
			v := readings[i]
			i++
			return v
		}
		return readings[len(readings)-1]
	}
}

func TestPhaseTimerFakeClockMath(t *testing.T) {
	// Start reads 100, End reads 350 → a 250 ns span.
	pt := NewPhaseTimer(fakeClock(100, 350, 350, 950))
	s := pt.Start()
	pt.End(PhasePhysics, s)
	s = pt.Start()
	pt.End(PhasePhysics, s) // 950-350 = 600 ns

	reports := pt.Report()
	if len(reports) != 1 {
		t.Fatalf("Report returned %d phases, want 1: %+v", len(reports), reports)
	}
	r := reports[0]
	if r.Phase != PhasePhysics || r.Name != "physics" || r.Nested {
		t.Fatalf("wrong phase identity: %+v", r)
	}
	if r.Count != 2 || r.TotalNs != 850 {
		t.Fatalf("count/total = %d/%d, want 2/850", r.Count, r.TotalNs)
	}
	if r.MeanNs != 425 {
		t.Fatalf("mean = %v, want 425", r.MeanNs)
	}
	// 250 ns lands in bucket (128, 256], 600 ns in (512, 1024]: the
	// p50 estimate must sit in the lower bucket, p99 in the upper.
	if r.P50Ns <= 128 || r.P50Ns > 256 {
		t.Errorf("p50 = %v, want in (128, 256]", r.P50Ns)
	}
	if r.P99Ns <= 512 || r.P99Ns > 1024 {
		t.Errorf("p99 = %v, want in (512, 1024]", r.P99Ns)
	}
	if got := pt.PipelineTotalNs(); got != 850 {
		t.Errorf("PipelineTotalNs = %d, want 850", got)
	}
}

func TestPhaseTimerNegativeSpanClamps(t *testing.T) {
	pt := NewPhaseTimer(fakeClock(1000, 400))
	s := pt.Start()
	pt.End(PhaseActorTick, s) // clock ran backwards
	r := pt.Report()
	if len(r) != 1 || r[0].TotalNs != 0 || r[0].Count != 1 {
		t.Fatalf("backwards clock not clamped: %+v", r)
	}
	// A 0 ns span lands in bucket 0 ([0, 1)); interpolation reports at
	// most the bucket's upper bound.
	if r[0].P99Ns > 1 {
		t.Errorf("p99 = %v, want <= 1 for an all-zero distribution", r[0].P99Ns)
	}
}

func TestPhaseTimerNestedExcludedFromPipeline(t *testing.T) {
	pt := NewPhaseTimer(fakeClock(0, 100, 100, 400))
	s := pt.Start()
	pt.End(PhaseRadioDeliver, s) // 100 ns, top-level
	s = pt.Start()
	pt.End(PhaseChainAppend, s) // 300 ns, nested
	if got := pt.PipelineTotalNs(); got != 100 {
		t.Fatalf("PipelineTotalNs = %d, want 100 (nested phases excluded)", got)
	}
	for _, r := range pt.Report() {
		if r.Phase == PhaseChainAppend && !r.Nested {
			t.Errorf("chain-append should report Nested")
		}
		if r.Phase == PhaseRadioDeliver && r.Nested {
			t.Errorf("radio-deliver should report top-level")
		}
	}
}

func TestPhaseTimerNilSafe(t *testing.T) {
	var pt *PhaseTimer
	s := pt.Start()
	if s != 0 {
		t.Errorf("nil Start = %d, want 0", s)
	}
	pt.End(PhasePhysics, s)
	pt.RecordSpans(NewSpanRecorder(0))
	if r := pt.Report(); r != nil {
		t.Errorf("nil Report = %v, want nil", r)
	}
	if n := pt.PipelineTotalNs(); n != 0 {
		t.Errorf("nil PipelineTotalNs = %d, want 0", n)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, timerBuckets - 1}, {1 << 62, timerBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestLogNsBoundsShape(t *testing.T) {
	b := LogNsBounds()
	if len(b) != timerBuckets-1 {
		t.Fatalf("len = %d, want %d", len(b), timerBuckets-1)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] != 1 || b[1] != 2 {
		t.Errorf("bounds start %v, %v; want 1, 2", b[0], b[1])
	}
}

// TestPhaseTimerAllocFree pins the hot path at zero allocations, both
// disabled (nil timer) and enabled — the property the hotpath analyzer
// annotations promise and the bench gate's ≤3% ceiling depends on.
func TestPhaseTimerAllocFree(t *testing.T) {
	var nilTimer *PhaseTimer
	if a := testing.AllocsPerRun(1000, func() {
		s := nilTimer.Start()
		nilTimer.End(PhaseActorTick, s)
	}); a != 0 {
		t.Errorf("disabled Start/End allocates %v per op, want 0", a)
	}
	pt := NewPhaseTimer(Now)
	if a := testing.AllocsPerRun(1000, func() {
		s := pt.Start()
		pt.End(PhaseActorTick, s)
	}); a != 0 {
		t.Errorf("enabled Start/End allocates %v per op, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		s := pt.Start()
		pt.EndSampled(PhaseChainAppend, s, 8)
	}); a != 0 {
		t.Errorf("enabled EndSampled allocates %v per op, want 0", a)
	}
}

func TestEndSampledWeights(t *testing.T) {
	// One measured 200 ns span at weight 8 tallies as 8 spans of 200 ns.
	pt := NewPhaseTimer(fakeClock(100, 300))
	s := pt.Start()
	pt.EndSampled(PhaseChainAppend, s, 8)
	reports := pt.Report()
	if len(reports) != 1 {
		t.Fatalf("Report returned %d phases, want 1: %+v", len(reports), reports)
	}
	r := reports[0]
	if r.Count != 8 || r.TotalNs != 1600 || r.MeanNs != 200 {
		t.Fatalf("count/total/mean = %d/%d/%v, want 8/1600/200", r.Count, r.TotalNs, r.MeanNs)
	}
	// All weighted mass sits in the (128, 256] bucket.
	if r.P99Ns <= 128 || r.P99Ns > 256 {
		t.Errorf("p99 = %v, want in (128, 256]", r.P99Ns)
	}
	// Nested phase: never added to the pipeline total.
	if got := pt.PipelineTotalNs(); got != 0 {
		t.Errorf("PipelineTotalNs = %d, want 0", got)
	}

	// Weight 0 records nothing; nil timer is a no-op; the recorder sees
	// the one measured span, not the scaled estimate.
	pt2 := NewPhaseTimer(fakeClock(10, 20))
	rec := NewSpanRecorder(4)
	pt2.RecordSpans(rec)
	pt2.EndSampled(PhaseChainAppend, pt2.Start(), 0)
	if got := pt2.Report(); len(got) != 0 {
		t.Errorf("weight-0 sample recorded: %+v", got)
	}
	pt2.EndSampled(PhaseChainAppend, pt2.Start(), 4)
	if spans := rec.Spans(); len(spans) != 1 || spans[0].DurNs != 0 {
		t.Errorf("recorder spans = %+v, want one span (last fake reading repeats)", spans)
	}
	var nilTimer *PhaseTimer
	nilTimer.EndSampled(PhaseChainAppend, nilTimer.Start(), 8)
}

func TestSpanRecorder(t *testing.T) {
	pt := NewPhaseTimer(fakeClock(10, 25, 30, 70))
	rec := NewSpanRecorder(0)
	pt.RecordSpans(rec)
	s := pt.Start()
	pt.End(PhasePhysics, s)
	s = pt.Start()
	pt.End(PhaseObservers, s)
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	want := []Span{
		{Phase: PhasePhysics, StartNs: 10, DurNs: 15},
		{Phase: PhaseObservers, StartNs: 30, DurNs: 40},
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
	if rec.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", rec.Dropped())
	}
}

func TestSpanRecorderCap(t *testing.T) {
	rec := NewSpanRecorder(3)
	for i := 0; i < 5; i++ {
		rec.record(PhasePhysics, int64(i), 1)
	}
	if got := len(rec.Spans()); got != 3 {
		t.Errorf("stored %d spans, want 3", got)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
	var nilRec *SpanRecorder
	if nilRec.Spans() != nil || nilRec.Dropped() != 0 {
		t.Errorf("nil recorder accessors not zero-valued")
	}
}

func TestSweepMeterMath(t *testing.T) {
	var cur int64
	m := NewSweepMeter(func() int64 { return cur })
	m.Begin(2)
	m.CellDone(10)
	m.CellDone(30)
	cur = 25
	m.End()
	r := m.Report()
	if r.Cells != 2 || r.Workers != 2 {
		t.Fatalf("cells/workers = %d/%d, want 2/2", r.Cells, r.Workers)
	}
	if r.WallNs != 25 || r.BusyNs != 40 {
		t.Fatalf("wall/busy = %d/%d, want 25/40", r.WallNs, r.BusyNs)
	}
	if want := 40.0 / 50.0; r.Utilization != want {
		t.Errorf("utilization = %v, want %v", r.Utilization, want)
	}
	if r.MeanNs != 20 {
		t.Errorf("mean = %v, want 20", r.MeanNs)
	}
	if r.P50Ns <= 0 || r.P99Ns < r.P50Ns {
		t.Errorf("quantiles not sane: p50=%v p99=%v", r.P50Ns, r.P99Ns)
	}

	// A second window accumulates wall time; utilization is clamped at 1
	// even when busy exceeds capacity (possible with accumulated windows).
	m.Begin(1)
	m.CellDone(1000)
	cur = 30
	m.End()
	r = m.Report()
	if r.WallNs != 30 {
		t.Errorf("accumulated wall = %d, want 30", r.WallNs)
	}
	if r.Utilization != 1 {
		t.Errorf("utilization = %v, want clamped to 1", r.Utilization)
	}
}

func TestSweepMeterOpenWindow(t *testing.T) {
	var cur int64
	m := NewSweepMeter(func() int64 { return cur })
	m.Begin(1)
	m.CellDone(5)
	cur = 10
	r := m.Report() // window still open: counts up to the current clock
	if r.WallNs != 10 {
		t.Errorf("open-window wall = %d, want 10", r.WallNs)
	}
	cur = 20
	m.End()
	if r := m.Report(); r.WallNs != 20 {
		t.Errorf("closed wall = %d, want 20", r.WallNs)
	}
}

func TestSweepMeterNilSafe(t *testing.T) {
	var m *SweepMeter
	if m.Now() <= 0 {
		t.Errorf("nil meter Now should read the package clock")
	}
	m.Begin(4)
	m.CellDone(100)
	m.End()
	if r := m.Report(); r != (SweepReport{}) {
		t.Errorf("nil Report = %+v, want zero", r)
	}
}

func TestRuntimeSampler(t *testing.T) {
	s := NewRuntimeSampler(3)
	if s.Every() != 3 {
		t.Fatalf("Every = %d, want 3", s.Every())
	}
	if def := NewRuntimeSampler(0); def.Every() != 8 {
		t.Fatalf("default Every = %d, want 8", def.Every())
	}
	// Very early in a process (e.g. when shuffling runs this test
	// first) the heap-objects metric can read 0 because the runtime has
	// not flushed its first memory-stats aggregate; a GC forces it.
	runtime.GC()
	s.Sample()
	s.Sample()
	r := s.Report()
	if r.Samples != 2 {
		t.Errorf("samples = %d, want 2", r.Samples)
	}
	if r.HeapLiveBytes == 0 || r.HeapLiveMax < r.HeapLiveBytes {
		t.Errorf("heap accounting not sane: %+v", r)
	}
	if r.Goroutines < 1 || r.GoroutinesMax < r.Goroutines {
		t.Errorf("goroutine accounting not sane: %+v", r)
	}

	var nilS *RuntimeSampler
	nilS.Sample()
	if nilS.Every() != 0 || nilS.Report() != (RuntimeReport{}) {
		t.Errorf("nil sampler accessors not zero-valued")
	}
}

func TestWriteMergedTrace(t *testing.T) {
	events := []obs.Event{
		{Tick: 1, Robot: 1, Kind: obs.EvAuditRoundStart},
		{Tick: 2, Robot: 1, Kind: obs.EvTokenGranted},
	}
	rec := NewSpanRecorder(0)
	rec.record(PhaseRadioDeliver, 1000, 500)
	rec.record(PhasePhysics, 2000, 250)

	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, events, obs.TickMapping{TicksPerSecond: 4}, rec); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("merged trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawWallProc, sawTickEvent, sawSlice bool
	for _, e := range doc.TraceEvents {
		if e["name"] == "process_name" {
			if args, ok := e["args"].(map[string]any); ok && args["name"] == "wall-clock pipeline" {
				sawWallProc = true
			}
		}
		if pid, ok := e["pid"].(float64); ok && pid == 1 {
			sawTickEvent = true
		}
		if e["ph"] == "X" && e["name"] == "radio-deliver" {
			sawSlice = true
			if e["dur"].(float64) != 0.5 { // 500 ns = 0.5 µs
				t.Errorf("slice dur = %v µs, want 0.5", e["dur"])
			}
		}
	}
	if !sawWallProc || !sawTickEvent || !sawSlice {
		t.Errorf("merged trace missing tracks: wallProc=%v tickEvent=%v slice=%v",
			sawWallProc, sawTickEvent, sawSlice)
	}

	// Nil recorder degrades to the tick-domain track plus the empty
	// wall-clock process — still valid JSON.
	buf.Reset()
	if err := WriteMergedTrace(&buf, events, obs.TickMapping{TicksPerSecond: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-recorder merged trace invalid JSON:\n%s", buf.String())
	}
}

func TestWritePhaseJSON(t *testing.T) {
	pt := NewPhaseTimer(fakeClock(0, 100, 200, 450))
	s := pt.Start()
	pt.End(PhaseRadioDeliver, s)
	s = pt.Start()
	pt.End(PhaseChainAppend, s)

	rt := NewRuntimeSampler(1)
	rt.Sample()

	var buf bytes.Buffer
	if err := WritePhaseJSON(&buf, pt, rt); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("phase report is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		PipelineTotalNs int64 `json:"pipeline_total_ns"`
		Phases          []struct {
			Phase   string `json:"phase"`
			Nested  bool   `json:"nested"`
			Count   uint64 `json:"count"`
			TotalNs uint64 `json:"total_ns"`
		} `json:"phases"`
		Runtime *struct {
			Samples uint64 `json:"samples"`
		} `json:"runtime"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.PipelineTotalNs != 100 {
		t.Errorf("pipeline_total_ns = %d, want 100", doc.PipelineTotalNs)
	}
	if len(doc.Phases) != 2 || doc.Phases[0].Phase != "radio-deliver" || doc.Phases[1].Phase != "chain-append" {
		t.Errorf("phases = %+v", doc.Phases)
	}
	if !doc.Phases[1].Nested || doc.Phases[1].TotalNs != 250 {
		t.Errorf("nested chain-append = %+v", doc.Phases[1])
	}
	if doc.Runtime == nil || doc.Runtime.Samples != 1 {
		t.Errorf("runtime block = %+v", doc.Runtime)
	}

	// Without a sampler the runtime block is absent entirely.
	buf.Reset()
	if err := WritePhaseJSON(&buf, pt, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"runtime\"") {
		t.Errorf("nil-sampler report still has a runtime block:\n%s", buf.String())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRadioDeliver.String() != "radio-deliver" || PhaseChainAppend.String() != "chain-append" {
		t.Errorf("phase names wrong: %q %q", PhaseRadioDeliver, PhaseChainAppend)
	}
	if NumPhases.String() != "unknown" {
		t.Errorf("out-of-range String = %q, want unknown", NumPhases.String())
	}
}

package perf

import "testing"

// Micro benches for the instrumentation hot path: one Start/End span
// per iteration, on a nil (disabled) timer and an enabled one. The
// alloc-pin tests assert 0 allocs/op; these record the ns cost in
// BENCH_perf.json so a regression in the disabled fast path (two nil
// checks) or the enabled path (clock read + three atomics + bucket
// index) is visible in review.

func BenchmarkPerf_StartEnd_Disabled(b *testing.B) {
	var t *PhaseTimer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.End(PhaseActorTick, t.Start())
	}
}

func BenchmarkPerf_StartEnd_Enabled(b *testing.B) {
	t := NewPhaseTimer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.End(PhaseActorTick, t.Start())
	}
	if t.Report()[0].Count != uint64(b.N) {
		b.Fatal("spans lost")
	}
}

func BenchmarkPerf_SweepMeter_CellDone(b *testing.B) {
	m := NewSweepMeter(nil)
	m.Begin(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.CellDone(1000)
	}
	m.End()
	if m.Report().Cells != b.N {
		b.Fatal("cells lost")
	}
}

package obs

import (
	"fmt"
	"sort"
)

// Registry is the single home for the harness's metrics: named
// counters, gauges, and histograms whose Snapshot is a sorted-by-name
// sample list, so two runs of the same (config, seed) serialize the
// same metrics byte-for-byte.
//
// A nil *Registry is valid and means "metrics disabled": every
// constructor on it returns a nil instrument, and nil instruments
// accept updates as no-ops. Call sites therefore never need to guard.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	gaugeFuncs map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() float64),
	}
}

// Counter is a monotonically increasing tally. The zero of a nil
// *Counter is usable: Add/Inc on nil are no-ops and Value is 0.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v += delta
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Store overwrites the count. It exists solely for snapshot restore —
// counters are owned by the components that increment them, and on
// resume each owner re-loads its tallies so the registry's next
// Snapshot matches the uninterrupted run's byte-for-byte. No-op on
// nil, like every other mutator.
func (c *Counter) Store(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Gauge is a last-write-wins value. Nil-safe like Counter.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram tallies observations into fixed buckets (upper-bound
// inclusive, with an implicit +Inf overflow bucket) and tracks count
// and sum. Nil-safe like Counter.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
}

// NewHistogram returns a standalone histogram (registered nowhere)
// with the given upper bounds, sorted ascending. Registry.Histogram
// uses it internally; callers that want streaming quantiles without a
// registry — the perf plane's latency distributions — use it
// directly. No samples are retained: quantiles come from the bucket
// tallies via Quantile.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile of the observed distribution from
// the bucket tallies (see BucketQuantile for the estimation contract).
// Nil or empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return BucketQuantile(h.bounds, h.counts, q)
}

// BucketQuantile estimates the q-quantile of a bucketed distribution:
// bounds are ascending upper bounds and counts holds len(bounds)+1
// tallies, the last being the overflow bucket — the Histogram layout.
// The estimate interpolates linearly within the winning bucket (lower
// edge 0 for the first); a quantile landing in the overflow bucket
// returns the highest finite bound, a deliberate underestimate that
// never invents a value. q is clamped to [0, 1]. The result is never
// NaN; empty tallies, empty bounds, and shape mismatches return 0.
func BucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // the first sample carries every quantile below 1/total
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1] // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// State returns the bucket tallies (a copy), total count, and sum for
// snapshotting. Bounds are not part of the state: they are fixed at
// registration and restored structurally by rebuilding the run.
func (h *Histogram) State() (counts []uint64, count uint64, sum float64) {
	if h == nil {
		return nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.count, h.sum
}

// SetState overwrites the tallies with ones previously obtained from
// State. The bucket count must match the histogram's registered
// bounds; a mismatch means the snapshot came from a differently
// configured run and is rejected. No-op (nil error) on a nil
// histogram so disabled-metrics restores stay guard-free.
func (h *Histogram) SetState(counts []uint64, count uint64, sum float64) error {
	if h == nil {
		return nil
	}
	if len(counts) != len(h.counts) {
		return fmt.Errorf("obs: histogram state has %d buckets, registered histogram has %d", len(counts), len(h.counts))
	}
	copy(h.counts, counts)
	h.count = count
	h.sum = sum
	return nil
}

// Counter returns (registering if needed) the named counter. On a nil
// registry it returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given ascending upper bounds; nil on a nil registry. Bounds are
// fixed at first registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// RegisterGaugeFunc registers a gauge whose value is read at snapshot
// time — used to mirror externally-owned tallies (e.g. the radio's
// per-robot byte counters) into the registry without double-writing.
// No-op on a nil registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.gaugeFuncs[name] = fn
}

// Sample is one named metric value in a snapshot.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot returns every registered metric as Samples sorted by name.
// Histograms expand into `<name>.bucket.<le>`, `<name>.bucket.+inf`,
// `<name>.count`, and `<name>.sum` samples. Nil registries snapshot
// empty.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	names := make([]string, 0,
		len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.histograms))
	kinds := make(map[string]byte, cap(names))
	for name := range r.counters {
		names = append(names, name)
		kinds[name] = 'c'
	}
	for name := range r.gauges {
		names = append(names, name)
		kinds[name] = 'g'
	}
	for name := range r.gaugeFuncs {
		names = append(names, name)
		kinds[name] = 'f'
	}
	for name := range r.histograms {
		names = append(names, name)
		kinds[name] = 'h'
	}
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		switch kinds[name] {
		case 'c':
			out = append(out, Sample{name, float64(r.counters[name].Value())})
		case 'g':
			out = append(out, Sample{name, r.gauges[name].Value()})
		case 'f':
			out = append(out, Sample{name, r.gaugeFuncs[name]()})
		case 'h':
			h := r.histograms[name]
			for i, b := range h.bounds {
				out = append(out, Sample{
					fmt.Sprintf("%s.bucket.%g", name, b),
					float64(h.counts[i]),
				})
			}
			out = append(out, Sample{name + ".bucket.+inf", float64(h.counts[len(h.bounds)])})
			out = append(out, Sample{name + ".count", float64(h.count)})
			out = append(out, Sample{name + ".sum", h.sum})
		}
	}
	// Histogram expansion appends derived names ("+inf" sorts before
	// digits), so re-sort the flattened list to keep the contract
	// strict: snapshots are sorted by sample name, full stop.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeSnapshots sums samples by name across snapshots (used by the
// chaos matrix to aggregate per-cell registries) and returns the
// merged set sorted by name.
func MergeSnapshots(snaps ...[]Sample) []Sample {
	totals := make(map[string]float64)
	names := make([]string, 0)
	for _, snap := range snaps {
		for _, s := range snap {
			if _, seen := totals[s.Name]; !seen {
				names = append(names, s.Name)
			}
			totals[s.Name] += s.Value
		}
	}
	sort.Strings(names)
	out := make([]Sample, len(names))
	for i, name := range names {
		out[i] = Sample{name, totals[name]}
	}
	return out
}

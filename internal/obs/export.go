package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TickMapping converts simulation ticks into the microsecond
// timestamps Chrome trace viewers expect. It is pure arithmetic on
// the configured tick rate: tick t maps to t * 1e6 / TicksPerSecond
// µs, so the mapping is deterministic and involves no wall clock.
type TickMapping struct {
	TicksPerSecond int
}

// Micros returns tick t's timestamp in microseconds. A zero or
// negative TicksPerSecond clamps to 1 tick/s — a degenerate but
// finite mapping — so an unconfigured TickMapping can never divide by
// zero and inject NaN/Inf timestamps into an exported trace (the
// merged two-track Perfetto export composes these timestamps with
// wall-clock spans, where one NaN corrupts the whole document).
func (m TickMapping) Micros(t uint64) float64 {
	tps := m.TicksPerSecond
	if tps <= 0 {
		tps = 1
	}
	return float64(t) * 1e6 / float64(tps)
}

// jsonString escapes s as a JSON string literal. Event details and
// metric names are plain ASCII, so strconv.Quote's escaping rules
// match JSON's for everything we emit.
func jsonString(s string) string { return strconv.Quote(s) }

// jsonFloat renders v in the shortest round-trippable form, with a
// fixed representation for integral values so output is stable.
func jsonFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteNDJSON writes one JSON object per event, newline-delimited, in
// slice order. Fields are emitted in a fixed order and zero-valued
// optional fields are omitted, so the byte stream is a pure function
// of the event sequence.
func WriteNDJSON(w io.Writer, events []Event) error {
	var b strings.Builder
	for _, e := range events {
		b.Reset()
		b.WriteString(`{"tick":`)
		b.WriteString(strconv.FormatUint(uint64(e.Tick), 10))
		b.WriteString(`,"robot":`)
		b.WriteString(strconv.FormatUint(uint64(e.Robot), 10))
		b.WriteString(`,"kind":`)
		b.WriteString(jsonString(e.Kind.String()))
		if e.Peer != 0 {
			b.WriteString(`,"peer":`)
			b.WriteString(strconv.FormatUint(uint64(e.Peer), 10))
		}
		if e.Cause != CauseNone {
			b.WriteString(`,"cause":`)
			b.WriteString(jsonString(e.Cause.String()))
		}
		if e.Value != 0 {
			b.WriteString(`,"value":`)
			b.WriteString(strconv.FormatInt(e.Value, 10))
		}
		if e.Detail != "" {
			b.WriteString(`,"detail":`)
			b.WriteString(jsonString(e.Detail))
		}
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsJSON writes a snapshot as one JSON object mapping
// metric name to value, one metric per line, preserving the
// snapshot's (sorted) order.
func WriteMetricsJSON(w io.Writer, snap []Sample) error {
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, s := range snap {
		sep := ",\n"
		if i == len(snap)-1 {
			sep = "\n"
		}
		line := "  " + jsonString(s.Name) + ": " + jsonFloat(s.Value) + sep
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON
// document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Layout: each robot is a "process" (named via metadata events);
// within it, thread 1 carries the protocol plane and thread 2 the
// radio plane. Audit rounds become complete ("X") slices from
// EvAuditRoundStart to the matching Complete/Abandoned; every other
// event is an instant ("i"). Timestamps come from the TickMapping.
func WriteChromeTrace(w io.Writer, events []Event, m TickMapping) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i, line := range ChromeTraceLines(events, m) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n")
		b.WriteString(line)
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ChromeTraceLines renders the events as individual Chrome
// trace-event JSON objects, one per string, in deterministic order.
// WriteChromeTrace wraps them in a trace document; the perf plane's
// merged export composes them with its wall-clock track instead.
//
// Robustness: events are normally tick-ordered (the Collector
// preserves emit order and the engine ticks monotonically), but the
// renderer does not trust that — an audit-round completion carrying
// an earlier tick than its start (a hand-built or corrupted event
// slice) would yield a negative slice duration, which trace viewers
// reject; such durations clamp to 0. Timestamps themselves are always
// finite (see TickMapping.Micros).
func ChromeTraceLines(events []Event, m TickMapping) []string {
	var out []string
	emit := func(s string) { out = append(out, s) }

	// Process-name metadata, one per robot, in first-seen order (the
	// event slice is already deterministic).
	seen := make(map[uint16]bool)
	for _, e := range events {
		id := uint16(e.Robot)
		if seen[id] {
			continue
		}
		seen[id] = true
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"robot %d"}}`, id, id))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":1,"args":{"name":"protocol"}}`, id))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":2,"args":{"name":"radio"}}`, id))
	}

	// Pair round starts with their completion/abandonment per robot.
	openRound := make(map[uint16]Event)
	for _, e := range events {
		id := uint16(e.Robot)
		tid := 1
		if e.Kind.FramePlane() {
			tid = 2
		}
		ts := m.Micros(uint64(e.Tick))
		switch e.Kind {
		case EvAuditRoundStart:
			openRound[id] = e
		case EvAuditRoundComplete, EvAuditRoundAbandoned:
			start, ok := openRound[id]
			if !ok {
				emit(fmt.Sprintf(`{"ph":"i","name":%s,"pid":%d,"tid":%d,"ts":%s,"s":"t","args":{"value":%d}}`,
					jsonString(e.Kind.String()), id, tid, jsonFloat(ts), e.Value))
				continue
			}
			delete(openRound, id)
			startTS := m.Micros(uint64(start.Tick))
			name := "audit-round"
			if e.Kind == EvAuditRoundAbandoned {
				name = "audit-round (abandoned)"
			}
			dur := ts - startTS
			if dur < 0 {
				dur = 0 // non-monotonic event slice; see ChromeTraceLines
			}
			emit(fmt.Sprintf(`{"ph":"X","name":%s,"pid":%d,"tid":1,"ts":%s,"dur":%s,"args":{"segment_bytes":%d,"tokens":%d}}`,
				jsonString(name), id, jsonFloat(startTS), jsonFloat(dur), start.Value, e.Value))
		default:
			args := fmt.Sprintf(`{"value":%d`, e.Value)
			if e.Peer != 0 {
				args += fmt.Sprintf(`,"peer":%d`, uint16(e.Peer))
			}
			if e.Cause != CauseNone {
				args += `,"cause":` + jsonString(e.Cause.String())
			}
			if e.Detail != "" {
				args += `,"detail":` + jsonString(e.Detail)
			}
			args += "}"
			emit(fmt.Sprintf(`{"ph":"i","name":%s,"pid":%d,"tid":%d,"ts":%s,"s":"t","args":%s}`,
				jsonString(e.Kind.String()), id, tid, jsonFloat(ts), args))
		}
	}

	// Rounds still open at end of trace render as instants so no data
	// is silently dropped.
	for _, e := range events {
		id := uint16(e.Robot)
		if open, ok := openRound[id]; ok && open == e {
			emit(fmt.Sprintf(`{"ph":"i","name":"audit-round (open)","pid":%d,"tid":1,"ts":%s,"s":"t","args":{"segment_bytes":%d}}`,
				id, jsonFloat(m.Micros(uint64(open.Tick))), open.Value))
			delete(openRound, id)
		}
	}

	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var exportFixture = []Event{
	{Tick: 4, Robot: 1, Kind: EvCheckpointFlush},
	{Tick: 4, Robot: 1, Kind: EvAuditRoundStart, Value: 210},
	{Tick: 4, Robot: 1, Kind: EvFrameTx, Peer: 2, Value: 96},
	{Tick: 5, Robot: 2, Kind: EvFrameRx, Peer: 1, Value: 96},
	{Tick: 5, Robot: 3, Kind: EvFrameDropped, Peer: 1, Cause: CauseLoss, Value: 96},
	{Tick: 6, Robot: 1, Kind: EvTokenGranted, Peer: 2, Value: 1},
	{Tick: 6, Robot: 1, Kind: EvAuditRoundComplete, Value: 2},
	{Tick: 9, Robot: 3, Kind: EvInvariantViolation, Detail: "bti: overdue"},
}

func TestWriteNDJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, exportFixture); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(exportFixture) {
		t.Fatalf("%d lines, want %d", len(lines), len(exportFixture))
	}
	// Every line is valid standalone JSON.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
	}
	// Spot-check field presence/omission.
	if want := `{"tick":4,"robot":1,"kind":"checkpoint-flush"}`; lines[0] != want {
		t.Fatalf("line 0 = %s, want %s", lines[0], want)
	}
	if want := `{"tick":5,"robot":3,"kind":"frame-dropped","peer":1,"cause":"loss","value":96}`; lines[4] != want {
		t.Fatalf("line 4 = %s, want %s", lines[4], want)
	}
	if !strings.Contains(lines[7], `"detail":"bti: overdue"`) {
		t.Fatalf("line 7 missing detail: %s", lines[7])
	}
	// Byte-identical across runs.
	var buf2 bytes.Buffer
	if err := WriteNDJSON(&buf2, exportFixture); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("NDJSON output not byte-identical across writes")
	}
}

func TestTickMapping(t *testing.T) {
	m := TickMapping{TicksPerSecond: 4}
	if got := m.Micros(0); got != 0 {
		t.Fatalf("Micros(0) = %v", got)
	}
	if got := m.Micros(4); got != 1e6 {
		t.Fatalf("Micros(4) = %v, want 1e6 (one second of ticks)", got)
	}
	if got := m.Micros(1); got != 250000 {
		t.Fatalf("Micros(1) = %v, want 250000", got)
	}
	// Zero tick rate degrades to 1 tick = 1 second rather than NaN.
	z := TickMapping{}
	if got := z.Micros(2); got != 2e6 {
		t.Fatalf("zero-rate Micros(2) = %v, want 2e6", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, exportFixture, TickMapping{TicksPerSecond: 4}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawRoundSlice, sawDropInstant, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["name"] == "audit-round" {
				sawRoundSlice = true
				// 4 ticks @4tps start, 2-tick duration = 500000 µs.
				if ev["ts"].(float64) != 1e6 || ev["dur"].(float64) != 500000 {
					t.Fatalf("round slice ts/dur = %v/%v", ev["ts"], ev["dur"])
				}
			}
		case "i":
			if ev["name"] == "frame-dropped" {
				sawDropInstant = true
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawRoundSlice || !sawDropInstant || !sawMeta {
		t.Fatalf("missing trace shapes: slice=%v drop=%v meta=%v",
			sawRoundSlice, sawDropInstant, sawMeta)
	}
}

func TestWriteChromeTraceOpenRound(t *testing.T) {
	events := []Event{{Tick: 2, Robot: 1, Kind: EvAuditRoundStart, Value: 100}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, TickMapping{TicksPerSecond: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "audit-round (open)") {
		t.Fatalf("unterminated round not rendered:\n%s", buf.String())
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	snap := []Sample{{"a.count", 3}, {"b.ratio", 0.5}}
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("metrics snapshot is not valid JSON:\n%s", buf.String())
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["a.count"] != 3 || m["b.ratio"] != 0.5 {
		t.Fatalf("round-trip mismatch: %v", m)
	}
	// Empty snapshot still valid.
	buf.Reset()
	if err := WriteMetricsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty snapshot invalid:\n%s", buf.String())
	}
}

func TestTickMappingNegativeRate(t *testing.T) {
	// Negative rates clamp like zero: 1 tick = 1 second, never NaN/Inf.
	m := TickMapping{TicksPerSecond: -3}
	if got := m.Micros(2); got != 2e6 {
		t.Fatalf("negative-rate Micros(2) = %v, want 2e6", got)
	}
}

func TestWriteChromeTraceNonMonotonicRound(t *testing.T) {
	// A round-complete event stamped BEFORE its start (possible with a
	// skewed trusted clock: events are emitted on the robot's local
	// clock) must clamp the slice duration to 0, never emit a negative
	// dur or NaN.
	events := []Event{
		{Tick: 10, Robot: 1, Kind: EvAuditRoundStart, Value: 7},
		{Tick: 6, Robot: 1, Kind: EvAuditRoundComplete, Value: 7},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, TickMapping{TicksPerSecond: 4}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("non-monotonic trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "audit-round" {
			found = true
			if dur := ev["dur"].(float64); dur != 0 {
				t.Fatalf("backwards round slice dur = %v, want clamped 0", dur)
			}
		}
	}
	if !found {
		t.Fatalf("round slice missing:\n%s", buf.String())
	}
}

func TestChromeTraceLines(t *testing.T) {
	// The exported per-event form (used by the merged perf trace) must
	// agree with WriteChromeTrace's document body line for line.
	lines := ChromeTraceLines(exportFixture, TickMapping{TicksPerSecond: 4})
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, exportFixture, TickMapping{TicksPerSecond: 4}); err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line is not standalone JSON: %s", line)
		}
		if !strings.Contains(buf.String(), line) {
			t.Fatalf("document missing line: %s", line)
		}
	}
}

package obs

import (
	"testing"

	"roborebound/internal/wire"
)

// The tracer-overhead micro-benches feed BENCH_obs.json (make bench).
// BenchmarkEmitDisabled is the number that matters most: it is the
// cost every frame/round pays on a production (untraced) run.

func benchEvent(i int) Event {
	return Event{
		Tick:  wire.Tick(i),
		Robot: wire.RobotID(i % 16),
		Kind:  EvFrameRx,
		Peer:  wire.RobotID((i + 1) % 16),
		Value: 96,
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(tr, benchEvent(i))
	}
}

func BenchmarkEmitCollector(b *testing.B) {
	c := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(c, benchEvent(i))
	}
}

func BenchmarkEmitFlightRecorder(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightRing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit(f, benchEvent(i))
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(benchName(i)).Add(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func benchName(i int) string {
	return "core.robot." + string(rune('a'+i%26)) + ".rounds"
}

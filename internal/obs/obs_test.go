package obs

import (
	"testing"

	"roborebound/internal/wire"
)

func TestEventKindNames(t *testing.T) {
	seen := make(map[string]EventKind)
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := EventKind(200).String(); got != "kind-200" {
		t.Fatalf("out-of-range kind name = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Tick: 7, Robot: 3, Kind: EvTokenGranted, Peer: 5, Value: 2}
	want := "tick=7 robot=3 token-granted peer=5 value=2"
	if got := e.String(); got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
	d := Event{Tick: 1, Robot: 4, Kind: EvFrameDropped, Peer: 2, Cause: CauseLoss, Value: 80}
	want = "tick=1 robot=4 frame-dropped peer=2 cause=loss value=80"
	if got := d.String(); got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
}

func TestEmitNilTracer(t *testing.T) {
	// Must not panic.
	Emit(nil, Event{Tick: 1, Robot: 2, Kind: EvFrameTx})
}

// TestEmitDisabledZeroAlloc pins the tentpole's "zero-alloc when
// disabled" contract: constructing an event and offering it to a nil
// tracer must not allocate.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	var tr Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		Emit(tr, Event{
			Tick:  99,
			Robot: 7,
			Kind:  EvFrameRx,
			Peer:  3,
			Value: 128,
		})
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer emit allocates %v times per op, want 0", allocs)
	}
}

func TestCollectorOrder(t *testing.T) {
	c := NewCollector()
	in := []Event{
		{Tick: 3, Robot: 1, Kind: EvAuditRoundStart},
		{Tick: 3, Robot: 2, Kind: EvFrameTx, Peer: wire.Broadcast},
		{Tick: 4, Robot: 1, Kind: EvAuditRoundComplete, Value: 1},
	}
	for _, e := range in {
		Emit(c, e)
	}
	if c.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(in))
	}
	for i, e := range c.Events() {
		if e != in[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, in[i])
		}
	}
}

func TestMultiTracer(t *testing.T) {
	if MultiTracer(nil, nil) != nil {
		t.Fatal("MultiTracer of all-nil should be nil (disabled)")
	}
	a, b := NewCollector(), NewCollector()
	if got := MultiTracer(nil, a); got != Tracer(a) {
		t.Fatal("MultiTracer with one live sink should return it directly")
	}
	m := MultiTracer(a, nil, b)
	m.Emit(Event{Tick: 1, Robot: 9, Kind: EvSafeModeEntered})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out reached %d/%d sinks, want 1/1", a.Len(), b.Len())
	}
}

func TestFlightRecorderBoundsAndOrder(t *testing.T) {
	f := NewFlightRecorder(4)
	// 10 protocol events for robot 1: only the last 4 survive.
	for i := 0; i < 10; i++ {
		f.Emit(Event{Tick: wire.Tick(i), Robot: 1, Kind: EvTokenGranted, Value: int64(i)})
	}
	got := f.Events(1)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.Value != want {
			t.Fatalf("event %d value = %d, want %d (last-N, in order)", i, e.Value, want)
		}
	}
	if d := f.Dropped(1); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
}

func TestFlightRecorderPlaneIsolation(t *testing.T) {
	f := NewFlightRecorder(2)
	// Protocol history first, then a flood of frame events.
	f.Emit(Event{Tick: 1, Robot: 5, Kind: EvSafeModeEntered})
	f.Emit(Event{Tick: 2, Robot: 5, Kind: EvTokenExpired})
	for i := 0; i < 50; i++ {
		f.Emit(Event{Tick: wire.Tick(10 + i), Robot: 5, Kind: EvFrameRx})
	}
	got := f.Events(5)
	var protocol []Event
	for _, e := range got {
		if !e.Kind.FramePlane() {
			protocol = append(protocol, e)
		}
	}
	if len(protocol) != 2 || protocol[0].Kind != EvSafeModeEntered || protocol[1].Kind != EvTokenExpired {
		t.Fatalf("frame flood evicted protocol history: %v", protocol)
	}
	// Merged dump is in emission order: protocol events precede the
	// surviving frame events.
	if got[0].Kind != EvSafeModeEntered || got[1].Kind != EvTokenExpired {
		t.Fatalf("merged dump out of order: %v", got[:2])
	}
}

func TestFlightRecorderRobots(t *testing.T) {
	f := NewFlightRecorder(0) // default size
	for _, id := range []wire.RobotID{9, 2, 5, 2} {
		f.Emit(Event{Tick: 1, Robot: id, Kind: EvFrameTx})
	}
	ids := f.Robots()
	want := []wire.RobotID{2, 5, 9}
	if len(ids) != len(want) {
		t.Fatalf("Robots = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Robots = %v, want %v", ids, want)
		}
	}
	if f.Events(42) != nil {
		t.Fatal("unknown robot should dump nil")
	}
}

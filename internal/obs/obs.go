// Package obs is the deterministic observability layer: a typed
// protocol-event tracer, a bounded per-robot flight recorder, and a
// metrics registry with deterministic snapshots.
//
// RoboRebound's value proposition is accountability — a robot must be
// able to convince f_max+1 peers of exactly what it saw and did
// (§3, PeerReview-style). This package gives the *reproduction* the
// same property: every protocol-visible event (audit rounds, token
// grants and expiries, Safe Mode entries, frame traffic and drops,
// checkpoint flushes, invariant violations) can be captured as a
// typed, tick-stamped record, and every counter the harness reports
// flows through one registry with sorted-key snapshots.
//
// Three rules keep the layer compatible with the repo's determinism
// contracts (see DESIGN.md "Static analysis & determinism contracts"):
//
//   - events are stamped with wire.Tick only — never the wall clock.
//     The tick→µs mapping used by the Chrome-trace exporter is pure
//     arithmetic on the configured tick rate;
//   - tracing is observation only: no tracer may feed back into
//     simulation state, so an instrumented run and an uninstrumented
//     run of the same (config, seed) are byte-identical;
//   - the disabled path is free: all emit sites guard on a nil
//     tracer, and Emit on a nil Tracer performs zero allocations
//     (pinned by TestEmitDisabledZeroAlloc).
package obs

import (
	"fmt"

	"roborebound/internal/wire"
)

// EventKind identifies one protocol event type.
type EventKind uint8

// The event taxonomy. Frame events are "radio-plane" (high volume,
// one per frame); everything else is "protocol-plane" (a handful per
// audit round). The flight recorder rings the two planes separately
// so frame noise cannot evict a robot's protocol history.
const (
	EvNone EventKind = iota
	// EvAuditRoundStart: a robot checkpointed its log and began
	// soliciting auditors. Value = encoded segment bytes.
	EvAuditRoundStart
	// EvAuditRoundComplete: the round collected f_max+1 tokens and the
	// checkpoint is covered. Value = round latency in ticks.
	EvAuditRoundComplete
	// EvAuditRoundAbandoned: a new round started while the previous
	// one was still uncovered. Value = tokens collected by the
	// abandoned round.
	EvAuditRoundAbandoned
	// EvTokenGranted: the a-node installed a token from Peer.
	// Value = tokens held for the current round after installation.
	EvTokenGranted
	// EvTokenExpired: the robot's count of fresh tokens dropped on the
	// a-node's periodic check. Value = fresh tokens remaining.
	EvTokenExpired
	// EvSafeModeEntered: the a-node fired the kill switch.
	EvSafeModeEntered
	// EvFrameTx: one frame (or fragment) left the robot's radio.
	// Peer = claimed destination, Value = encoded bytes.
	EvFrameTx
	// EvFrameRx: one frame (or fragment) was decoded and kept.
	// Peer = physical transmitter, Value = encoded bytes.
	EvFrameRx
	// EvFrameDropped: a deliverable frame was lost; Cause says why.
	// Peer = physical transmitter, Value = encoded bytes.
	EvFrameDropped
	// EvCheckpointFlush: the c-node log recorded a chain-flush mark
	// (auditlog.EntryMark) ahead of a checkpoint.
	EvCheckpointFlush
	// EvInvariantViolation: the fault-injection checker latched a
	// violated invariant. Detail carries the description.
	EvInvariantViolation

	numEventKinds // sentinel, keep last
)

var eventKindNames = [numEventKinds]string{
	EvNone:                "none",
	EvAuditRoundStart:     "audit-round-start",
	EvAuditRoundComplete:  "audit-round-complete",
	EvAuditRoundAbandoned: "audit-round-abandoned",
	EvTokenGranted:        "token-granted",
	EvTokenExpired:        "token-expired",
	EvSafeModeEntered:     "safe-mode-entered",
	EvFrameTx:             "frame-tx",
	EvFrameRx:             "frame-rx",
	EvFrameDropped:        "frame-dropped",
	EvCheckpointFlush:     "checkpoint-flush",
	EvInvariantViolation:  "invariant-violation",
}

// String returns the stable kebab-case name used by every exporter.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// FramePlane reports whether the kind belongs to the high-volume
// radio plane (one event per frame) rather than the protocol plane.
func (k EventKind) FramePlane() bool {
	return k == EvFrameTx || k == EvFrameRx || k == EvFrameDropped
}

// DropCause says why a deliverable frame was lost.
type DropCause uint8

const (
	CauseNone DropCause = iota
	// CauseLoss: the medium's loss model dropped the candidate.
	CauseLoss
	// CauseLinkFilter: a link filter (partition, withheld response)
	// blocked the candidate.
	CauseLinkFilter
)

// String returns the stable name used by the exporters.
func (c DropCause) String() string {
	switch c {
	case CauseLoss:
		return "loss"
	case CauseLinkFilter:
		return "link-filter"
	default:
		return "none"
	}
}

// Event is one tick-stamped protocol event. It is a plain value with
// no heap references on the hot paths (Detail is non-empty only for
// invariant violations), so constructing and passing one allocates
// nothing.
type Event struct {
	// Tick is the event time on the emitting component's clock: the
	// robot's local protocol clock for protocol events, the radio
	// medium's delivery clock for frame events. Never wall time.
	Tick wire.Tick
	// Robot is the robot the event belongs to (the flight recorder
	// rings by this). wire.Broadcast marks system-wide events.
	Robot wire.RobotID
	// Kind is the event type.
	Kind EventKind
	// Peer is the counterpart robot, when the kind has one: the
	// auditor for token grants, the frame src/dst for radio events.
	// 0 means "no peer".
	Peer wire.RobotID
	// Cause is set on EvFrameDropped only.
	Cause DropCause
	// Value is the kind-specific scalar documented on each kind.
	Value int64
	// Detail is a rare-path annotation (invariant violations); hot
	// paths leave it empty.
	Detail string
}

// String renders the event as one human-readable line (the format the
// flight-recorder dumps use).
func (e Event) String() string {
	s := fmt.Sprintf("tick=%d robot=%d %s", e.Tick, e.Robot, e.Kind)
	if e.Peer != 0 {
		s += fmt.Sprintf(" peer=%d", e.Peer)
	}
	if e.Cause != CauseNone {
		s += " cause=" + e.Cause.String()
	}
	if e.Value != 0 {
		s += fmt.Sprintf(" value=%d", e.Value)
	}
	if e.Detail != "" {
		s += " detail=" + e.Detail
	}
	return s
}

// Tracer consumes protocol events. Implementations must be pure
// observers: consuming an event must not feed back into simulation
// state, or instrumented runs would diverge from clean ones.
//
// A nil Tracer means "disabled"; every emit site in the repo guards
// on nil (or calls Emit, which does), making the disabled path
// zero-cost and allocation-free.
type Tracer interface {
	Emit(Event)
}

// Emit forwards e to t if tracing is enabled. It is the nil-safe
// helper for call sites that don't want to guard themselves.
func Emit(t Tracer, e Event) {
	if t != nil {
		t.Emit(e)
	}
}

// Collector is a Tracer that retains every event in emission order —
// the full-fidelity sink behind the NDJSON and Chrome-trace exports.
type Collector struct {
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) { c.events = append(c.events, e) }

// Events returns the collected events in emission order (do not
// mutate).
func (c *Collector) Events() []Event { return c.events }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// multiTracer fans one event out to several sinks.
type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// MultiTracer combines tracers into one; nils are skipped. It returns
// nil when every argument is nil, so the combined tracer stays
// "disabled" (and free) in that case.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

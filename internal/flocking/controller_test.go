package flocking

import (
	"bytes"
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func testParams() Params {
	return DefaultParams(4, 4, geom.V(100, 100))
}

func reading(t wire.Tick, pos, vel geom.Vec2) wire.SensorReading {
	return wire.SensorReading{
		Time: t,
		PosX: pos.X, PosY: pos.Y,
		VelX: float32(vel.X), VelY: float32(vel.Y),
	}
}

func stateMsg(src wire.RobotID, t wire.Tick, pos, vel geom.Vec2) []byte {
	m := wire.StateMsg{Src: src, Time: t,
		PosX: float32(pos.X), PosY: float32(pos.Y),
		VelX: float32(vel.X), VelY: float32(vel.Y)}
	return m.Encode()
}

func TestTable3Defaults(t *testing.T) {
	p := DefaultParams(4, 4, geom.Zero2)
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"kappa", p.Kappa, 1.2},
		{"eps", p.Eps, 0.1},
		{"a", p.A, 5.0},
		{"b", p.B, 5.0},
		{"h_phi_alpha", p.HAlpha, 0.2},
		{"h_phi_beta", p.HBeta, 0.9},
		{"c1_alpha", p.C1Alpha, 0.005},
		{"c2_alpha", p.C2Alpha, 0.05},
		{"c1_beta", p.C1Beta, 0.0},
		{"c2_beta", p.C2Beta, 0.0},
		{"c1_gamma", p.C1Gamma, -0.001},
		{"c2_gamma", p.C2Gamma, -0.060},
		{"r=1.2d", p.R(), 4.8},
		{"d'=0.5κd", p.DPrime(), 2.4},
		{"r'=κd'", p.RPrime(), 2.88},
		{"accel cap", p.AccelCap, 5.0},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v (Table 3)", c.name, c.got, c.want)
		}
	}
	if p.ControlPeriod != 1 { // 0.25 s at 4 ticks/s
		t.Errorf("control period = %d ticks, want 1", p.ControlPeriod)
	}
	if p.BroadcastPeriod != 6 { // 1.5 s at 4 ticks/s
		t.Errorf("broadcast period = %d ticks, want 6", p.BroadcastPeriod)
	}
}

func TestGoalAttraction(t *testing.T) {
	c := New(1, testParams())
	// At rest, far from the goal, alone: the control vector must point
	// toward the goal.
	out := c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	if out.Cmd == nil {
		t.Fatal("no actuator command")
	}
	u := geom.V(out.Cmd.AccX, out.Cmd.AccY)
	toGoal := testParams().Goal.Sub(geom.V(0, 0)).Unit()
	if u.Unit().Dot(toGoal) < 0.99 {
		t.Errorf("control %v does not point at goal (dir %v)", u, toGoal)
	}
}

func TestGoalDamping(t *testing.T) {
	p := testParams()
	c := New(1, p)
	// Sitting exactly at the goal with residual velocity: the command
	// must oppose the velocity.
	out := c.OnSensor(reading(0, p.Goal, geom.V(2, 0)))
	if out.Cmd.AccX >= 0 {
		t.Errorf("damping term should brake: acc = (%v, %v)", out.Cmd.AccX, out.Cmd.AccY)
	}
}

func TestNeighborRepulsionWhenTooClose(t *testing.T) {
	p := testParams()
	p.C1Gamma, p.C2Gamma = 0, 0 // isolate the α-term
	c := New(1, p)
	c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	// Neighbor 1 m east; desired spacing is 4 m ⇒ repulsion (−x).
	c.OnMessage(stateMsg(2, 0, geom.V(1, 0), geom.Zero2))
	out := c.OnSensor(reading(1, geom.V(0, 0), geom.Zero2))
	if out.Cmd.AccX >= 0 {
		t.Errorf("expected repulsion from close neighbor, acc.X = %v", out.Cmd.AccX)
	}
}

func TestNeighborAttractionWhenTooFar(t *testing.T) {
	p := testParams()
	p.C1Gamma, p.C2Gamma = 0, 0
	c := New(1, p)
	c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	// Neighbor 4.5 m east: inside range (4.8 m), past spacing (4 m) ⇒
	// attraction (+x).
	c.OnMessage(stateMsg(2, 0, geom.V(4.5, 0), geom.Zero2))
	out := c.OnSensor(reading(1, geom.V(0, 0), geom.Zero2))
	if out.Cmd.AccX <= 0 {
		t.Errorf("expected attraction to far neighbor, acc.X = %v", out.Cmd.AccX)
	}
}

func TestNeighborOutOfRangeIgnored(t *testing.T) {
	p := testParams()
	p.C1Gamma, p.C2Gamma = 0, 0
	c := New(1, p)
	c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	c.OnMessage(stateMsg(2, 0, geom.V(50, 0), geom.Zero2))
	out := c.OnSensor(reading(1, geom.V(0, 0), geom.Zero2))
	if out.Cmd.AccX != 0 || out.Cmd.AccY != 0 {
		t.Errorf("out-of-range neighbor influenced control: %+v", out.Cmd)
	}
}

func TestVelocityConsensus(t *testing.T) {
	p := testParams()
	p.C1Gamma, p.C2Gamma = 0, 0
	p.C1Alpha = 0 // isolate the damping term
	c := New(1, p)
	c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	// Neighbor at desired spacing, moving north: consensus pulls our
	// velocity toward it.
	c.OnMessage(stateMsg(2, 0, geom.V(4, 0), geom.V(0, 1)))
	out := c.OnSensor(reading(1, geom.V(0, 0), geom.Zero2))
	if out.Cmd.AccY <= 0 {
		t.Errorf("expected velocity consensus toward moving neighbor, acc.Y = %v", out.Cmd.AccY)
	}
}

func TestObstacleRepulsion(t *testing.T) {
	p := testParams()
	p.C1Gamma, p.C2Gamma = 0, 0
	p.C1Beta, p.C2Beta = 5.0, 1.0
	p.Obstacles = []geom.SphereObstacle{{C: geom.V(2, 0), R: 1}}
	c := New(1, p)
	// Robot 1 m from the obstacle surface, well inside r' = 2.88 m.
	out := c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	if out.Cmd.AccX >= 0 {
		t.Errorf("expected obstacle repulsion (−x), acc.X = %v", out.Cmd.AccX)
	}
	// φ_β is repulsive-only: approaching from the far side must push +x.
	c2 := New(2, p)
	out2 := c2.OnSensor(reading(0, geom.V(4, 0), geom.Zero2))
	if out2.Cmd.AccX <= 0 {
		t.Errorf("expected repulsion (+x) on far side, acc.X = %v", out2.Cmd.AccX)
	}
}

func TestAccelerationSaturation(t *testing.T) {
	p := testParams()
	p.C1Gamma = -10 // absurd gain to force saturation
	p.Goal = geom.V(1000, 1000)
	c := New(1, p)
	out := c.OnSensor(reading(0, geom.V(0, 0), geom.Zero2))
	if math.Abs(out.Cmd.AccX) > p.AccelCap || math.Abs(out.Cmd.AccY) > p.AccelCap {
		t.Errorf("acceleration exceeds per-axis cap: %+v", out.Cmd)
	}
	if math.Abs(out.Cmd.AccX) != p.AccelCap {
		t.Errorf("expected saturation at %v, got %v", p.AccelCap, out.Cmd.AccX)
	}
}

func TestBroadcastCadenceAndStagger(t *testing.T) {
	p := testParams() // broadcast period 6 ticks
	c := New(2, p)    // phase = 2
	var broadcasts []wire.Tick
	for tk := wire.Tick(0); tk < 24; tk++ {
		out := c.OnSensor(reading(tk, geom.Zero2, geom.Zero2))
		if out.Broadcast != nil {
			broadcasts = append(broadcasts, tk)
		}
	}
	want := []wire.Tick{2, 8, 14, 20}
	if len(broadcasts) != len(want) {
		t.Fatalf("broadcasts at %v, want %v", broadcasts, want)
	}
	for i := range want {
		if broadcasts[i] != want[i] {
			t.Fatalf("broadcasts at %v, want %v", broadcasts, want)
		}
	}
	// A different ID gets a different phase.
	c3 := New(3, p)
	out := c3.OnSensor(reading(2, geom.Zero2, geom.Zero2))
	if out.Broadcast != nil {
		t.Error("robot 3 broadcast on robot 2's phase")
	}
}

func TestBroadcastContents(t *testing.T) {
	p := testParams()
	c := New(2, p)
	pos, vel := geom.V(7, -3), geom.V(0.5, 0.25)
	out := c.OnSensor(reading(2, pos, vel))
	if out.Broadcast == nil {
		t.Fatal("no broadcast on phase tick")
	}
	m, err := wire.DecodeStateMsg(out.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 2 || m.Time != 2 || m.PosX != 7 || m.PosY != -3 ||
		m.VelX != 0.5 || m.VelY != 0.25 {
		t.Errorf("broadcast contents: %+v", m)
	}
}

func TestOwnEchoIgnored(t *testing.T) {
	c := New(5, testParams())
	c.OnSensor(reading(0, geom.Zero2, geom.Zero2))
	c.OnMessage(stateMsg(5, 0, geom.V(1, 1), geom.Zero2))
	if len(c.Neighbors()) != 0 {
		t.Error("own broadcast echo recorded as neighbor")
	}
}

func TestMalformedMessageIgnored(t *testing.T) {
	c := New(1, testParams())
	c.OnMessage([]byte{0xde, 0xad})
	c.OnMessage(nil)
	if len(c.Neighbors()) != 0 {
		t.Error("malformed message created a neighbor")
	}
}

func TestNeighborUpdateInPlace(t *testing.T) {
	c := New(1, testParams())
	c.OnSensor(reading(0, geom.Zero2, geom.Zero2))
	c.OnMessage(stateMsg(2, 0, geom.V(1, 0), geom.Zero2))
	c.OnMessage(stateMsg(2, 0, geom.V(2, 0), geom.Zero2))
	nbrs := c.Neighbors()
	if len(nbrs) != 1 || nbrs[0].PosX != 2 {
		t.Errorf("neighbor update failed: %+v", nbrs)
	}
}

func TestNeighborsSortedByID(t *testing.T) {
	c := New(1, testParams())
	c.OnSensor(reading(0, geom.Zero2, geom.Zero2))
	for _, id := range []wire.RobotID{9, 3, 7, 2, 8} {
		c.OnMessage(stateMsg(id, 0, geom.V(1, 1), geom.Zero2))
	}
	nbrs := c.Neighbors()
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1].ID >= nbrs[i].ID {
			t.Fatalf("neighbors not sorted: %+v", nbrs)
		}
	}
}

func TestNeighborExpiry(t *testing.T) {
	p := testParams() // timeout 18 ticks (4.5 s)
	c := New(1, p)
	c.OnSensor(reading(0, geom.Zero2, geom.Zero2))
	c.OnMessage(stateMsg(2, 0, geom.V(1, 0), geom.Zero2))
	c.OnSensor(reading(17, geom.Zero2, geom.Zero2))
	if len(c.Neighbors()) != 1 {
		t.Fatal("neighbor expired too early")
	}
	c.OnSensor(reading(18, geom.Zero2, geom.Zero2))
	if len(c.Neighbors()) != 0 {
		t.Error("stale neighbor not expired")
	}
}

func TestStateRoundTripExact(t *testing.T) {
	p := testParams()
	c := New(1, p)
	c.OnSensor(reading(0, geom.V(1.234567890123, -9.87654321), geom.V(0.125, -0.5)))
	for _, id := range []wire.RobotID{4, 2, 9} {
		c.OnMessage(stateMsg(id, 0, geom.V(float64(id), 1), geom.V(0.25, 0)))
	}
	state := c.EncodeState()
	restored, err := Factory{Params: p}.Restore(1, state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.EncodeState(), state) {
		t.Fatal("state round trip not bit-exact")
	}

	// The restored controller must behave identically: same inputs →
	// same outputs, bit for bit.
	in1 := reading(5, geom.V(1.5, -9.5), geom.V(0.0625, -0.25))
	a := c.OnSensor(in1)
	b := restored.OnSensor(in1)
	if a.Cmd == nil || b.Cmd == nil || *a.Cmd != *b.Cmd {
		t.Errorf("restored controller diverges: %+v vs %+v", a.Cmd, b.Cmd)
	}
	if !bytes.Equal(a.Broadcast, b.Broadcast) {
		t.Error("broadcast divergence after restore")
	}
}

func TestRestoreRejectsNonCanonicalState(t *testing.T) {
	p := testParams()
	c := New(1, p)
	c.OnSensor(reading(0, geom.Zero2, geom.Zero2))
	c.OnMessage(stateMsg(2, 0, geom.V(1, 0), geom.Zero2))
	c.OnMessage(stateMsg(3, 0, geom.V(2, 0), geom.Zero2))
	state := c.EncodeState()

	// Swap the two neighbor records (26 bytes each, after the 38-byte
	// header): a forged, non-canonical checkpoint must be rejected,
	// otherwise two different encodings of the same state would hash
	// differently and break token binding.
	const header = 8 + 16 + 8 + 2
	swapped := append([]byte(nil), state...)
	copy(swapped[header:header+26], state[header+26:header+52])
	copy(swapped[header+26:header+52], state[header:header+26])
	if _, err := (Factory{Params: p}).Restore(1, swapped); err == nil {
		t.Error("non-canonical neighbor order accepted")
	}

	if _, err := (Factory{Params: p}).Restore(1, state[:10]); err == nil {
		t.Error("truncated state accepted")
	}
	if _, err := (Factory{Params: p}).Restore(1, append(state, 0)); err == nil {
		t.Error("oversized state accepted")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	p := testParams()
	run := func() []byte {
		c := New(1, p)
		for tk := wire.Tick(0); tk < 40; tk++ {
			c.OnMessage(stateMsg(2, tk, geom.V(float64(tk)*0.1, 3), geom.V(0.5, 0)))
			c.OnSensor(reading(tk, geom.V(float64(tk)*0.05, 0), geom.V(0.2, 0)))
		}
		return c.EncodeState()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("two identical runs produced different state")
	}
}

// TestLatticeFormation drives a small closed-loop flock (controller +
// double-integrator physics, no radio) and checks Olfati-Saber's core
// emergent property: neighbors settle near the desired spacing d and
// the group's velocities agree.
func TestLatticeFormation(t *testing.T) {
	p := DefaultParams(4, 4, geom.V(60, 60))
	// Strengthen the lattice so it settles within a short test horizon
	// (Table 3's gains converge over hundreds of seconds).
	p.C1Alpha, p.C2Alpha = 0.2, 0.4

	type robot struct {
		c        *Controller
		pos, vel geom.Vec2
	}
	robots := make([]*robot, 4)
	starts := []geom.Vec2{{X: 0, Y: 0}, {X: 5, Y: 1}, {X: 1, Y: 6}, {X: 7, Y: 7}}
	for i := range robots {
		robots[i] = &robot{c: New(wire.RobotID(i+1), p), pos: starts[i]}
	}
	const dt = 0.25
	for tk := wire.Tick(0); tk < 1200; tk++ {
		// Broadcast phase: everyone hears everyone (no radio model).
		for i, r := range robots {
			msg := stateMsg(wire.RobotID(i+1), tk, r.pos, r.vel)
			for j, other := range robots {
				if i != j {
					other.c.OnMessage(msg)
				}
			}
		}
		for _, r := range robots {
			out := r.c.OnSensor(reading(tk, r.pos, r.vel))
			acc := geom.V(out.Cmd.AccX, out.Cmd.AccY)
			r.vel = r.vel.Add(acc.Scale(dt))
			r.pos = r.pos.Add(r.vel.Scale(dt))
		}
	}
	// Velocity consensus: all velocities close to the mean.
	var meanVel geom.Vec2
	for _, r := range robots {
		meanVel = meanVel.Add(r.vel)
	}
	meanVel = meanVel.Scale(1.0 / float64(len(robots)))
	for i, r := range robots {
		if r.vel.Sub(meanVel).Norm() > 0.3 {
			t.Errorf("robot %d velocity %v far from consensus %v", i+1, r.vel, meanVel)
		}
	}
	// Spacing: nearest-neighbor distances near d = 4 (quasi-lattice).
	for i, r := range robots {
		nearest := 1e18
		for j, o := range robots {
			if i == j {
				continue
			}
			if d := r.pos.Dist(o.pos); d < nearest {
				nearest = d
			}
		}
		if nearest < 2.0 || nearest > 7.0 {
			t.Errorf("robot %d nearest neighbor at %.2f m, want ≈4 m", i+1, nearest)
		}
	}
}

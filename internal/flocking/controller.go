package flocking

import (
	"fmt"
	"sort"

	"roborebound/internal/control"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Neighbor is the last state heard from a peer. Positions and
// velocities are kept as float32 — exactly the precision they arrived
// with over the air — so checkpoint round-trips are lossless.
type Neighbor struct {
	ID         wire.RobotID
	LastHeard  wire.Tick // controller-local time when the state was recorded
	PosX, PosY float32
	VelX, VelY float32
}

// Controller is the per-robot Olfati-Saber state machine. It
// implements control.Controller; see that package for the determinism
// contract.
type Controller struct {
	id     wire.RobotID
	params Params

	time      wire.Tick // time of the last processed sensor reading
	pos       geom.Vec2 // own position (float64, from the s-node)
	vel       geom.Vec2
	neighbors []Neighbor // sorted by ID, unique
}

var _ control.Controller = (*Controller)(nil)

// New returns a controller in its canonical initial state.
func New(id wire.RobotID, p Params) *Controller {
	return &Controller{id: id, params: p}
}

// OnMessage ingests a state broadcast from a peer. Messages that do
// not parse, or that claim this robot's own ID, are ignored. The
// claimed source ID is *not* authenticated — this is precisely the
// surface the §5.3 spoofing attack exploits.
func (c *Controller) OnMessage(payload []byte) {
	m, err := wire.DecodeStateMsg(payload)
	if err != nil || m.Src == c.id {
		return
	}
	nbr := Neighbor{
		ID:        m.Src,
		LastHeard: c.time,
		PosX:      m.PosX, PosY: m.PosY,
		VelX: m.VelX, VelY: m.VelY,
	}
	i := sort.Search(len(c.neighbors), func(i int) bool { return c.neighbors[i].ID >= m.Src })
	if i < len(c.neighbors) && c.neighbors[i].ID == m.Src {
		c.neighbors[i] = nbr
		return
	}
	c.neighbors = append(c.neighbors, Neighbor{})
	copy(c.neighbors[i+1:], c.neighbors[i:])
	c.neighbors[i] = nbr
}

// OnSensor runs one control step: update own pose, expire stale
// neighbors, compute the Olfati-Saber control vector, and emit the
// actuator command plus — on broadcast ticks — the state broadcast.
func (c *Controller) OnSensor(r wire.SensorReading) control.Outputs {
	c.time = r.Time
	c.pos = geom.V(r.PosX, r.PosY)
	c.vel = geom.V(float64(r.VelX), float64(r.VelY))
	c.expireNeighbors()

	u := c.controlVector()
	out := control.Outputs{
		Cmd: &wire.ActuatorCmd{Time: r.Time, AccX: u.X, AccY: u.Y},
	}
	if c.isBroadcastTick(r.Time) {
		msg := wire.StateMsg{
			Src:  c.id,
			Time: r.Time,
			PosX: float32(c.pos.X), PosY: float32(c.pos.Y),
			VelX: float32(c.vel.X), VelY: float32(c.vel.Y),
		}
		out.Broadcast = msg.Encode()
	}
	return out
}

// isBroadcastTick staggers broadcasts across robots by a per-ID phase,
// so an entire flock does not key up in the same tick. The phase is a
// pure function of the robot ID, so replay agrees.
func (c *Controller) isBroadcastTick(t wire.Tick) bool {
	period := c.params.BroadcastPeriod
	if period == 0 {
		return false
	}
	phase := wire.Tick(c.id) % period
	return t%period == phase
}

func (c *Controller) expireNeighbors() {
	if c.params.NeighborTimeout == 0 {
		return
	}
	keep := c.neighbors[:0]
	for _, n := range c.neighbors {
		if n.LastHeard+c.params.NeighborTimeout > c.time {
			keep = append(keep, n)
		}
	}
	c.neighbors = keep
}

// controlVector computes u_i = u_α + u_β + u_γ (Algorithm 1 / [68]
// Eq. 59), saturated per axis.
func (c *Controller) controlVector() geom.Vec2 {
	p := &c.params
	u := geom.Zero2

	// α-term: spring/damper with each neighbor within range.
	rA, dA := p.RAlpha(), p.DAlpha()
	for _, n := range c.neighbors {
		xj := geom.V(float64(n.PosX), float64(n.PosY))
		vj := geom.V(float64(n.VelX), float64(n.VelY))
		diff := xj.Sub(c.pos)
		z := geom.SigmaNorm(diff, p.Eps)
		if z >= rA {
			continue // outside interaction range
		}
		// NbrSpring: gradient-based attraction/repulsion.
		phi := geom.PhiAlpha(z, rA, dA, p.HAlpha, p.A, p.B)
		nij := geom.SigmaGrad(diff, p.Eps)
		u = u.Add(nij.Scale(p.C1Alpha * phi))
		// NbrDamp: velocity consensus.
		aij := geom.Bump(z/rA, p.HAlpha)
		u = u.Add(vj.Sub(c.vel).Scale(p.C2Alpha * aij))
	}

	// β-term: repulsion from the nearest points of nearby obstacles.
	if p.C1Beta != 0 || p.C2Beta != 0 {
		rB, dB := p.RBeta(), p.DBeta()
		for _, o := range p.Obstacles {
			ba := o.Beta(c.pos, c.vel)
			if !ba.OK {
				continue
			}
			diff := ba.Pos.Sub(c.pos)
			z := geom.SigmaNorm(diff, p.Eps)
			if z >= rB {
				continue
			}
			phi := geom.PhiBeta(z, dB, p.HBeta)
			nik := geom.SigmaGrad(diff, p.Eps)
			u = u.Add(nik.Scale(p.C1Beta * phi))
			bik := geom.Bump(z/dB, p.HBeta)
			u = u.Add(ba.Vel.Sub(c.vel).Scale(p.C2Beta * bik))
		}
	}

	// γ-term: goal spring/damper (SysGoalSpring + SysGoalDamp). Table 3
	// gains are negative, so adding attracts toward the goal and damps
	// velocity relative to it.
	u = u.Add(c.pos.Sub(p.Goal).Scale(p.C1Gamma))
	u = u.Add(c.vel.Sub(p.GoalVel).Scale(p.C2Gamma))

	return u.ClampAxes(p.AccelCap)
}

// Pos returns the controller's view of its own position (tests only).
func (c *Controller) Pos() geom.Vec2 { return c.pos }

// Neighbors returns a copy of the neighbor table (tests/metrics only).
func (c *Controller) Neighbors() []Neighbor {
	return append([]Neighbor(nil), c.neighbors...)
}

// EncodeState produces the canonical checkpoint state (§5.2: time,
// pose, neighbor count, and per-neighbor ID, last-heard time, and
// pose).
func (c *Controller) EncodeState() []byte {
	w := wire.NewWriter(8 + 16 + 8 + 2 + len(c.neighbors)*26)
	w.U64(uint64(c.time))
	w.F64(c.pos.X)
	w.F64(c.pos.Y)
	w.F32(float32(c.vel.X))
	w.F32(float32(c.vel.Y))
	w.U16(uint16(len(c.neighbors)))
	for _, n := range c.neighbors {
		w.U16(uint16(n.ID))
		w.U64(uint64(n.LastHeard))
		w.F32(n.PosX)
		w.F32(n.PosY)
		w.F32(n.VelX)
		w.F32(n.VelY)
	}
	return w.Bytes()
}

func (c *Controller) restoreState(state []byte) error {
	r := wire.NewReader(state)
	c.time = wire.Tick(r.U64())
	c.pos = geom.V(r.F64(), r.F64())
	c.vel = geom.V(float64(r.F32()), float64(r.F32()))
	n := int(r.U16())
	if n > r.Remaining()/26 { // 26 bytes per encoded neighbor (U16 + U64 + 4×F32)
		return fmt.Errorf("flocking: neighbor count %d exceeds payload", n)
	}
	c.neighbors = make([]Neighbor, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		nbr := Neighbor{
			ID:        wire.RobotID(r.U16()),
			LastHeard: wire.Tick(r.U64()),
			PosX:      r.F32(), PosY: r.F32(),
			VelX: r.F32(), VelY: r.F32(),
		}
		if int(nbr.ID) <= prev {
			return fmt.Errorf("flocking: non-canonical neighbor order in state")
		}
		prev = int(nbr.ID)
		c.neighbors = append(c.neighbors, nbr)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("flocking state: %w", err)
	}
	return nil
}

// Factory builds flocking controllers for one mission configuration.
type Factory struct {
	Params Params
}

var _ control.Factory = Factory{}

// New implements control.Factory.
func (f Factory) New(id wire.RobotID) control.Controller {
	return New(id, f.Params)
}

// Restore implements control.Factory.
func (f Factory) Restore(id wire.RobotID, state []byte) (control.Controller, error) {
	c := New(id, f.Params)
	if err := c.restoreState(state); err != nil {
		return nil, err
	}
	return c, nil
}

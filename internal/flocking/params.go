// Package flocking implements the Olfati-Saber flocking protocol
// ([68]; Algorithm 1 of the RoboRebound paper) as a deterministic,
// replayable controller. Each robot is attracted/repelled by its
// neighbors through a finite-range spring–damper action function,
// repelled by obstacles through projected β-agents, and drawn to a
// global rendezvous point by a goal spring–damper.
package flocking

import (
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Params are the protocol constants, following Table 3 (Appendix A) of
// the paper. All distances are meters, times are engine ticks, and
// gains are in SI units of the acceleration they produce.
type Params struct {
	// D is the desired inter-robot spacing d (varies per experiment).
	D float64
	// Kappa is the ratio r/d of interaction range to spacing (1.2).
	Kappa float64
	// Eps is the σ-norm parameter ε (0.1).
	Eps float64
	// A and B parameterize the action function φ (a = b = 5).
	A, B float64
	// HAlpha and HBeta are the bump-function boundaries for the
	// inter-robot and obstacle action functions (0.2 and 0.9).
	HAlpha, HBeta float64
	// C1Alpha/C2Alpha are the neighbor spring/damper gains.
	C1Alpha, C2Alpha float64
	// C1Beta/C2Beta are the obstacle spring/damper gains (zero in the
	// paper's §5 evaluation, which has no obstacles; the Fig. 2
	// scenario turns them on).
	C1Beta, C2Beta float64
	// C1Gamma/C2Gamma are the goal spring/damper gains. Table 3 lists
	// them as negative; the control law adds
	// C1Gamma·(x−g) + C2Gamma·(v−v_g), so negative values attract.
	C1Gamma, C2Gamma float64

	// Goal is the global rendezvous point g; GoalVel its velocity
	// (zero for a static destination).
	Goal, GoalVel geom.Vec2

	// Obstacles are the mission's static obstacles (part of the shared
	// mission configuration, so replay has them too).
	Obstacles []geom.SphereObstacle

	// AccelCap is the per-axis acceleration saturation (5 m/s², §4).
	AccelCap float64

	// TicksPerSecond converts engine ticks to seconds.
	TicksPerSecond float64
	// ControlPeriod is the interval between control steps, in ticks
	// (0.25 s in the paper — every sensor poll).
	ControlPeriod wire.Tick
	// BroadcastPeriod is the interval between state broadcasts, in
	// ticks (1.5 s in the paper).
	BroadcastPeriod wire.Tick
	// NeighborTimeout is how long a neighbor's last state remains
	// usable, in ticks; stale neighbors are dropped at the next
	// control step.
	NeighborTimeout wire.Tick
}

// DefaultParams returns the Table 3 values with the paper's timing
// setup (0.25 s control period, 1.5 s broadcast period) at the given
// tick rate, for a flock with desired spacing d and a goal.
func DefaultParams(ticksPerSecond float64, d float64, goal geom.Vec2) Params {
	return Params{
		D:               d,
		Kappa:           1.2,
		Eps:             0.1,
		A:               5.0,
		B:               5.0,
		HAlpha:          0.2,
		HBeta:           0.9,
		C1Alpha:         0.005,
		C2Alpha:         0.05,
		C1Beta:          0.0,
		C2Beta:          0.0,
		C1Gamma:         -0.001,
		C2Gamma:         -0.060,
		Goal:            goal,
		AccelCap:        5.0,
		TicksPerSecond:  ticksPerSecond,
		ControlPeriod:   tick(0.25, ticksPerSecond),
		BroadcastPeriod: tick(1.5, ticksPerSecond),
		NeighborTimeout: tick(4.5, ticksPerSecond),
	}
}

func tick(seconds, ticksPerSecond float64) wire.Tick {
	t := wire.Tick(seconds * ticksPerSecond)
	if t == 0 {
		t = 1
	}
	return t
}

// R returns the interaction range r = κ·d.
func (p *Params) R() float64 { return p.Kappa * p.D }

// DPrime returns d′ = 0.5·κ·d, the desired robot-obstacle clearance.
func (p *Params) DPrime() float64 { return 0.5 * p.Kappa * p.D }

// RPrime returns r′ = κ·d′, the obstacle interaction range.
func (p *Params) RPrime() float64 { return p.Kappa * p.DPrime() }

// RAlpha returns r in σ-norm units.
func (p *Params) RAlpha() float64 { return geom.SigmaNormScalar(p.R(), p.Eps) }

// DAlpha returns d in σ-norm units.
func (p *Params) DAlpha() float64 { return geom.SigmaNormScalar(p.D, p.Eps) }

// RBeta returns r′ in σ-norm units.
func (p *Params) RBeta() float64 { return geom.SigmaNormScalar(p.RPrime(), p.Eps) }

// DBeta returns d′ in σ-norm units.
func (p *Params) DBeta() float64 { return geom.SigmaNormScalar(p.DPrime(), p.Eps) }

package prng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently-seeded streams", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Error("zero seed produced all-zero stream")
	}
}

// Pin the stream so that accidental algorithm changes (which would
// silently change every experiment) are caught.
func TestStreamPinned(t *testing.T) {
	s := New(12345)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s2 := New(12345)
	for i, w := range got {
		if g := s2.Uint64(); g != w {
			t.Fatalf("replay mismatch at %d: %x vs %x", i, g, w)
		}
	}
	// The first draw must be stable across test runs within a build;
	// record it so a diff in CI output flags any change loudly.
	t.Logf("prng(12345) first draws: %x %x %x", got[0], got[1], got[2])
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 20, 1<<63 + 1} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Uint64n(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 500 {
			t.Errorf("digit %d count %d, want ≈%d", d, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(21)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPerm(t *testing.T) {
	s := New(8)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(1)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams collide %d times", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

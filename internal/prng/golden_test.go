package prng

import "testing"

// The golden vectors below pin the exact output stream of the
// generator. TestStreamPinned only proves self-consistency within one
// build; these literals prove cross-build, cross-machine stability —
// the property deterministic replay and the paper-figure experiments
// actually rely on. If any of these fail, the algorithm changed and
// every recorded experiment output is invalidated: bump the
// algorithm's version notice in the package comment and regenerate
// EXPERIMENTS.md rather than updating the constants casually.
//
// seed 0 doubles as a cross-reference against the canonical
// xoshiro256** + SplitMix64 reference implementation.
var goldenStreams = map[uint64][4]uint64{
	0:          {0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c},
	1:          {0xb3f2af6d0fc710c5, 0x853b559647364cea, 0x92f89756082a4514, 0x642e1c7bc266a3a7},
	42:         {0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1},
	12345:      {0xbe6a36374160d49b, 0x214aaa0637a688c6, 0xf69d16de9954d388, 0x0c60048c4e96e033},
	0xdeadbeef: {0xc5555444a74d7e83, 0x65c30d37b4b16e38, 0x54f773200a4efa23, 0x429aed75fb958af7},
}

func TestGoldenStreams(t *testing.T) {
	for seed, want := range goldenStreams {
		s := New(seed)
		for i, w := range want {
			if g := s.Uint64(); g != w {
				t.Errorf("seed %#x draw %d = %#016x, want %#016x (ALGORITHM CHANGED: all recorded experiments are invalidated)",
					seed, i, g, w)
			}
		}
	}
}

// Fork derivation is part of the stream contract too: each robot's
// per-stream seed comes from Fork, so a change here reshuffles every
// multi-robot experiment even if Uint64 itself is untouched.
func TestGoldenFork(t *testing.T) {
	f := New(42).Fork()
	want := [2]uint64{0x866ed7098f821de2, 0x37d0b43cef13cdf7}
	for i, w := range want {
		if g := f.Uint64(); g != w {
			t.Errorf("fork(42) draw %d = %#016x, want %#016x", i, g, w)
		}
	}
}

// Derived distributions are pinned through the same stream: Float64's
// bit-to-float mapping and Shuffle's swap sequence are observable in
// recorded experiment outputs.
func TestGoldenDerived(t *testing.T) {
	s := New(7)
	if g := s.Float64(); g != 0.7005764821796896 {
		t.Errorf("Float64 #1 = %v", g)
	}
	if g := s.Float64(); g != 0.2787512294737843 {
		t.Errorf("Float64 #2 = %v", g)
	}
	p := New(9).Perm(8)
	want := []int{2, 3, 6, 4, 1, 5, 7, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Perm(8) = %v, want %v", p, want)
		}
	}
}

// Snapshot/restore contract: SetState(State()) must resume the exact
// stream. The mid-stream states and the draws that follow them are
// golden vectors — they pin the State layout itself (word order of
// the xoshiro256** state), not just end-to-end behavior, so a codec
// that silently permuted words would fail here even though a pure
// round-trip test would pass.
func TestGoldenStateRoundTrip(t *testing.T) {
	type vec struct {
		seed  uint64
		skip  int
		state [4]uint64
		next  [3]uint64
	}
	vecs := []vec{
		{seed: 0, skip: 2,
			state: [4]uint64{0x42ccf76e969d9edd, 0x267e53e3c2b94c43, 0x7a748df3423ca157, 0xb6ed46c3ef32a7ce},
			next:  [3]uint64{0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c, 0xbba5ad4a1f842e59}},
		{seed: 42, skip: 5,
			state: [4]uint64{0x7e3fedbea92a13a5, 0xc9a25ba0f11c828c, 0xc38346747039f414, 0xcf55c271f2386fa5},
			next:  [3]uint64{0xc50da53101795238, 0xb82154855a65ddb2, 0xd99a2743ebe60087}},
		{seed: 0xdeadbeef, skip: 0,
			state: [4]uint64{0x4adfb90f68c9eb9b, 0xde586a3141a10922, 0x021fbc2f8e1cfc1d, 0x7466ce737be16790},
			next:  [3]uint64{0xc5555444a74d7e83, 0x65c30d37b4b16e38, 0x54f773200a4efa23}},
	}
	for _, v := range vecs {
		s := New(v.seed)
		for i := 0; i < v.skip; i++ {
			s.Uint64()
		}
		st := s.State()
		if st != v.state {
			t.Errorf("seed %#x after %d draws: State() = %#016x, want %#016x (STATE LAYOUT CHANGED: snapshots from prior builds will not restore)",
				v.seed, v.skip, st, v.state)
			continue
		}
		restored := New(0xffffffffffffffff) // deliberately different seed
		if err := restored.SetState(st); err != nil {
			t.Fatalf("seed %#x: SetState: %v", v.seed, err)
		}
		for i, w := range v.next {
			if g := restored.Uint64(); g != w {
				t.Errorf("seed %#x resumed draw %d = %#016x, want %#016x", v.seed, i, g, w)
			}
		}
		// The original must be untouched by State(): it emits the same
		// remaining stream the restored copy just did, and the two stay
		// in lockstep afterwards.
		for i, w := range v.next {
			if g := s.Uint64(); g != w {
				t.Errorf("seed %#x: State() disturbed the original at draw %d: %#016x, want %#016x", v.seed, i, g, w)
			}
		}
		for i := 0; i < 64; i++ {
			if av, bv := s.Uint64(), restored.Uint64(); av != bv {
				t.Fatalf("seed %#x: original and restored diverged at resumed draw %d", v.seed, i)
			}
		}
	}
}

// An all-zero state would leave xoshiro256** emitting zero forever;
// SetState must refuse it so a corrupted snapshot surfaces as an error
// rather than a dead stream.
func TestSetStateRejectsZero(t *testing.T) {
	s := New(1)
	if err := s.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
	if g, w := s.Uint64(), New(1).Uint64(); g != w {
		t.Fatalf("rejected SetState clobbered the stream: %#x vs %#x", g, w)
	}
}

// Streams must also be stable under interleaving with Fork: forking
// advances the parent by exactly one draw, no more.
func TestForkAdvancesParentOnce(t *testing.T) {
	a, b := New(5), New(5)
	a.Fork()
	b.Uint64()
	for i := 0; i < 16; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("Fork consumed more than one parent draw (diverged at %d: %#x vs %#x)", i, av, bv)
		}
	}
}

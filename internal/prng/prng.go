// Package prng provides a small, deterministic pseudo-random number
// generator with an explicitly versioned algorithm (xoshiro256**
// seeded via SplitMix64).
//
// Simulations in this repository must be bit-reproducible across runs
// and across machines: deterministic replay audits a robot by
// re-executing its controller, and the experiment harness pins
// paper-figure outputs. math/rand's stream is not part of Go's
// compatibility promise, so the generator is implemented from scratch.
package prng

import (
	"errors"
	"math"
)

// Source is a deterministic xoshiro256** generator. The zero value is
// not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, which
// guarantees a well-mixed nonzero internal state for any seed
// (including 0).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// State returns the generator's internal xoshiro256** state. Together
// with SetState it lets a snapshot capture a stream mid-flight and a
// restored source emit the identical remaining draws; the layout is
// pinned by the golden round-trip vectors in golden_test.go.
func (s *Source) State() [4]uint64 { return s.s }

// SetState overwrites the internal state with one previously obtained
// from State. An all-zero state is rejected (xoshiro256** is stuck at
// zero forever): callers restoring from untrusted bytes get an error
// instead of a silently dead stream.
func (s *Source) SetState(st [4]uint64) error {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		return errZeroState
	}
	s.s = st
	return nil
}

// errZeroState is a fixed error value so SetState stays allocation-free.
var errZeroState = errors.New("prng: all-zero state is not a valid xoshiro256** state")

// Fork returns a new, statistically independent Source derived from
// this one. Used to give each robot its own stream so that adding or
// removing one robot does not perturb the draws seen by the others.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	r := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return r
}

// Uint64n returns a uniform value in [0, n). n must be > 0. Uses
// Lemire's unbiased multiply-shift rejection method.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// NormFloat64 returns a standard normal variate (Box–Muller; the
// polar/ziggurat variants save cycles but add state, and simulation
// RNG is nowhere near hot).
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Shuffle permutes n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

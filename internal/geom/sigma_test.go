package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 0.1 // Table 3: ε = 0.1

func TestSigmaNormZero(t *testing.T) {
	if got := SigmaNorm(Zero2, eps); got != 0 {
		t.Errorf("SigmaNorm(0) = %v", got)
	}
	if got := SigmaNormScalar(0, eps); got != 0 {
		t.Errorf("SigmaNormScalar(0) = %v", got)
	}
}

// The σ-norm must satisfy the defining identity
// ε‖z‖_σ² + 2‖z‖_σ − ‖z‖² = 0 (rearranged from Eq. 8).
func TestSigmaNormIdentity(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		z := V(x, y)
		s := SigmaNorm(z, eps)
		lhs := eps*s*s + 2*s
		return math.Abs(lhs-z.NormSq()) <= 1e-6*math.Max(1, z.NormSq())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// σ-norm of a vector must agree with the scalar σ-norm of its magnitude.
func TestSigmaNormScalarConsistency(t *testing.T) {
	for _, v := range []Vec2{V(1, 0), V(0, 2), V(3, 4), V(-5, 12)} {
		a := SigmaNorm(v, eps)
		b := SigmaNormScalar(v.Norm(), eps)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("SigmaNorm(%v)=%v != SigmaNormScalar(|v|)=%v", v, a, b)
		}
	}
}

// σ_ε is the gradient of the σ-norm: check against a central finite
// difference along both axes.
func TestSigmaGradIsGradient(t *testing.T) {
	z := V(1.7, -0.9)
	const h = 1e-6
	gx := (SigmaNorm(z.Add(V(h, 0)), eps) - SigmaNorm(z.Sub(V(h, 0)), eps)) / (2 * h)
	gy := (SigmaNorm(z.Add(V(0, h)), eps) - SigmaNorm(z.Sub(V(0, h)), eps)) / (2 * h)
	g := SigmaGrad(z, eps)
	if math.Abs(g.X-gx) > 1e-5 || math.Abs(g.Y-gy) > 1e-5 {
		t.Errorf("SigmaGrad(%v) = %v, finite difference = (%v, %v)", z, g, gx, gy)
	}
}

// ‖σ_ε(z)‖ < 1/√ε always (the gradient is bounded; Olfati-Saber §III).
func TestSigmaGradBounded(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		return SigmaGrad(V(x, y), eps).Norm() < 1/math.Sqrt(eps)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigma1(t *testing.T) {
	if Sigma1(0) != 0 {
		t.Error("σ₁(0) != 0")
	}
	// Odd function, bounded by 1, monotone.
	for _, z := range []float64{0.1, 1, 5, 100} {
		if Sigma1(z) != -Sigma1(-z) {
			t.Errorf("σ₁ not odd at %v", z)
		}
		if s := Sigma1(z); s <= 0 || s >= 1 {
			t.Errorf("σ₁(%v) = %v out of (0,1)", z, s)
		}
	}
	if Sigma1(3) <= Sigma1(2) {
		t.Error("σ₁ not monotone")
	}
	v := Sigma1Vec(V(3, 4))
	if math.Abs(v.Norm()-Sigma1(5)) > 1e-12 {
		t.Errorf("Sigma1Vec norm mismatch: %v vs %v", v.Norm(), Sigma1(5))
	}
}

func TestBumpShape(t *testing.T) {
	const h = 0.2
	if Bump(-0.5, h) != 0 {
		t.Error("ρ_h < 0 should be 0")
	}
	if Bump(0, h) != 1 || Bump(0.1, h) != 1 {
		t.Error("ρ_h on [0,h) should be 1")
	}
	if got := Bump(h, h); got != 1 {
		t.Errorf("ρ_h(h) = %v, want 1 (cos(0) branch)", got)
	}
	if got := Bump(1, h); math.Abs(got) > 1e-12 {
		t.Errorf("ρ_h(1) = %v, want 0", got)
	}
	if Bump(1.5, h) != 0 {
		t.Error("ρ_h > 1 should be 0")
	}
	// Midpoint of the falloff: ½(1+cos(π/2)) = ½.
	mid := h + (1-h)/2
	if got := Bump(mid, h); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ρ_h(midpoint) = %v, want 0.5", got)
	}
}

// Property: ρ_h is in [0,1] and non-increasing.
func TestBumpProperties(t *testing.T) {
	f := func(z1, z2 float64) bool {
		const h = 0.9
		if math.IsNaN(z1) || math.IsNaN(z2) {
			return true
		}
		lo, hi := math.Min(z1, z2), math.Max(z1, z2)
		b1, b2 := Bump(lo, h), Bump(hi, h)
		return b1 >= 0 && b1 <= 1 && b2 >= 0 && b2 <= 1 && b1 >= b2-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiZeroCrossing(t *testing.T) {
	// φ has a zero at z = -c where c = |a-b|/√(4ab); with a == b, c = 0
	// so φ(0) = 0. Table 3 sets a = b = 5.
	const a, b = 5.0, 5.0
	if got := Phi(0, a, b); math.Abs(got) > 1e-12 {
		t.Errorf("φ(0) = %v, want 0 for a=b", got)
	}
	if Phi(1, a, b) <= 0 {
		t.Error("φ should be attractive (positive) past equilibrium")
	}
	if Phi(-1, a, b) >= 0 {
		t.Error("φ should be repulsive (negative) before equilibrium")
	}
	// Bounds: φ ∈ (−b, a) … actually (−(a+b)/2·1+(a−b)/2, …); for a=b=5
	// the range is (−5, 5).
	for _, z := range []float64{-100, -1, 0, 1, 100} {
		if p := Phi(z, a, b); p <= -5 || p >= 5 {
			t.Errorf("φ(%v) = %v out of (−5,5)", z, p)
		}
	}
}

func TestPhiAlphaFiniteRange(t *testing.T) {
	const (
		a, b, h = 5.0, 5.0, 0.2
	)
	d := 4.0 // desired spacing in meters
	r := 1.2 * d
	dA := SigmaNormScalar(d, eps)
	rA := SigmaNormScalar(r, eps)

	// At the desired spacing the action is zero (equilibrium).
	if got := PhiAlpha(dA, rA, dA, h, a, b); math.Abs(got) > 1e-12 {
		t.Errorf("φ_α at equilibrium = %v, want 0", got)
	}
	// Inside: repulsive; outside (but in range): attractive.
	if PhiAlpha(SigmaNormScalar(2, eps), rA, dA, h, a, b) >= 0 {
		t.Error("φ_α should repel when too close")
	}
	if PhiAlpha(SigmaNormScalar(4.5, eps), rA, dA, h, a, b) <= 0 {
		t.Error("φ_α should attract when too far (within range)")
	}
	// Beyond the interaction range: exactly zero.
	if got := PhiAlpha(rA*1.01, rA, dA, h, a, b); got != 0 {
		t.Errorf("φ_α beyond range = %v, want 0", got)
	}
}

func TestPhiBetaRepulsiveOnly(t *testing.T) {
	const h = 0.9
	dB := SigmaNormScalar(2.4, eps)
	for _, z := range []float64{0, dB / 2, dB * 0.99} {
		if got := PhiBeta(z, dB, h); got > 0 {
			t.Errorf("φ_β(%v) = %v > 0; obstacles must never attract", z, got)
		}
	}
	if got := PhiBeta(dB*1.5, dB, h); got != 0 {
		t.Errorf("φ_β beyond range = %v, want 0", got)
	}
}

func TestAdjacencySymmetricAndRange(t *testing.T) {
	const h = 0.2
	rA := SigmaNormScalar(4.8, eps)
	xi, xj := V(0, 0), V(3, 1)
	aij := Adjacency(xi, xj, rA, h, eps)
	aji := Adjacency(xj, xi, rA, h, eps)
	if aij != aji {
		t.Errorf("adjacency not symmetric: %v vs %v", aij, aji)
	}
	if aij <= 0 || aij > 1 {
		t.Errorf("adjacency out of (0,1]: %v", aij)
	}
	if got := Adjacency(V(0, 0), V(100, 0), rA, h, eps); got != 0 {
		t.Errorf("adjacency beyond range = %v, want 0", got)
	}
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	v, w := V(3, 4), V(-1, 2)
	if got := v.Add(w); got != V(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != V(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != V(-3, -4) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); got != -3+8 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != 3*2-4*(-1) {
		t.Errorf("Cross = %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
	if got := v.Dist(w); math.Abs(got-math.Sqrt(16+4)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnit(t *testing.T) {
	if got := V(3, 4).Unit(); !got.ApproxEqual(V(0.6, 0.8), 1e-12) {
		t.Errorf("Unit = %v", got)
	}
	if got := Zero2.Unit(); got != Zero2 {
		t.Errorf("Unit(0) = %v, want zero vector", got)
	}
}

func TestClampAxes(t *testing.T) {
	cases := []struct {
		in    Vec2
		limit float64
		want  Vec2
	}{
		{V(10, -10), 5, V(5, -5)},
		{V(3, -2), 5, V(3, -2)},
		{V(-7, 1), 5, V(-5, 1)},
		{V(0, 0), 0, V(0, 0)},
	}
	for _, c := range cases {
		if got := c.in.ClampAxes(c.limit); got != c.want {
			t.Errorf("ClampAxes(%v, %v) = %v, want %v", c.in, c.limit, got, c.want)
		}
	}
}

func TestClampNorm(t *testing.T) {
	got := V(3, 4).ClampNorm(1)
	if math.Abs(got.Norm()-1) > 1e-12 {
		t.Errorf("ClampNorm norm = %v, want 1", got.Norm())
	}
	if !got.Unit().ApproxEqual(V(0.6, 0.8), 1e-12) {
		t.Errorf("ClampNorm changed direction: %v", got)
	}
	if got := V(1, 0).ClampNorm(5); got != V(1, 0) {
		t.Errorf("ClampNorm should not grow vectors: %v", got)
	}
	if got := Zero2.ClampNorm(5); got != Zero2 {
		t.Errorf("ClampNorm(0) = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0), V(10, -10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp t=0: %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp t=1: %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5) {
		t.Errorf("Lerp t=0.5: %v", got)
	}
}

func TestPerp(t *testing.T) {
	v := V(2, 1)
	p := v.Perp()
	if p.Dot(v) != 0 {
		t.Errorf("Perp not orthogonal: %v", p)
	}
	if v.Cross(p) <= 0 {
		t.Errorf("Perp should rotate CCW: cross = %v", v.Cross(p))
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, v := range []Vec2{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}

// Property: vector addition is commutative and associative, and Sub is
// the inverse of Add.
func TestVecAlgebraProperties(t *testing.T) {
	commutes := func(ax, ay, bx, by float64) bool {
		a, b := V(ax, ay), V(bx, by)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	inverse := func(ax, ay, bx, by float64) bool {
		a, b := V(ax, ay), V(bx, by)
		got := a.Add(b).Sub(b)
		// Floating point: exact for finite values of similar scale is
		// not guaranteed, but a+b-b == a holds when no rounding occurs;
		// compare with a relative tolerance instead.
		scale := math.Max(1, math.Max(math.Abs(ax)+math.Abs(bx), math.Abs(ay)+math.Abs(by)))
		return got.ApproxEqual(a, 1e-9*scale) || !a.IsFinite() || !b.IsFinite()
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampNorm never increases the norm and never exceeds limit.
func TestClampNormProperty(t *testing.T) {
	f := func(x, y, rawLimit float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(rawLimit) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(rawLimit, 0) {
			return true
		}
		limit := math.Abs(rawLimit)
		v := V(x, y)
		got := v.ClampNorm(limit)
		return got.Norm() <= math.Max(limit, v.Norm())*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

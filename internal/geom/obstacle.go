package geom

// Obstacles are modeled as in Olfati-Saber §VII: each physical
// obstacle induces a virtual "β-agent" — the point on the obstacle
// boundary nearest to the robot, with a projected velocity — which the
// controller then treats like a (purely repulsive) neighbor. Two
// obstacle shapes cover the paper's scenarios: spheres (the obstacle
// grid of Fig. 2) and infinite walls (arena boundaries).

// BetaAgent is the position and velocity of the virtual agent an
// obstacle projects for one robot, plus whether the robot is within
// interaction range at all.
type BetaAgent struct {
	Pos Vec2
	Vel Vec2
	// OK is false when the projection is undefined (e.g. the robot
	// sits exactly at a sphere's center) or the obstacle is not
	// engaged; callers skip such agents.
	OK bool
}

// Obstacle projects β-agents for robots. Implementations must be pure
// functions of their arguments: β-agent projection happens inside the
// deterministic controller and is replayed during audits.
type Obstacle interface {
	// Beta returns the β-agent induced for a robot at position x with
	// velocity v.
	Beta(x, v Vec2) BetaAgent
	// Contains reports whether p is strictly inside the obstacle; the
	// physics engine uses it for crash detection.
	Contains(p Vec2) bool
}

// SphereObstacle is a disc of radius R centered at C (Olfati-Saber
// Eq. 51 case 2).
type SphereObstacle struct {
	C Vec2
	R float64
}

// Beta implements the spherical-obstacle projection:
//
//	μ = R/‖x − C‖,  x̂ = μ·x + (1−μ)·C,  v̂ = μ·P·v,
//	P = I − a·aᵀ,   a = (x − C)/‖x − C‖.
//
// The projected velocity is the robot's velocity with its radial
// component removed and scaled by μ, i.e. the β-agent slides along the
// obstacle surface.
func (o SphereObstacle) Beta(x, v Vec2) BetaAgent {
	d := x.Sub(o.C)
	n := d.Norm()
	if n == 0 {
		return BetaAgent{} // projection undefined at the center
	}
	mu := o.R / n
	a := d.Scale(1 / n)
	// P·v = v − (a·v)·a
	pv := v.Sub(a.Scale(a.Dot(v)))
	return BetaAgent{
		Pos: x.Scale(mu).Add(o.C.Scale(1 - mu)),
		Vel: pv.Scale(mu),
		OK:  true,
	}
}

// Contains reports whether p lies strictly inside the disc.
func (o SphereObstacle) Contains(p Vec2) bool {
	return p.DistSq(o.C) < o.R*o.R
}

// WallObstacle is an infinite hyperplane (line) with unit normal N
// passing through point P0; the half-plane opposite N is solid
// (Olfati-Saber Eq. 51 case 1).
type WallObstacle struct {
	P0 Vec2
	N  Vec2 // must be unit length; NewWall normalizes
}

// NewWall constructs a wall through p0 whose free side is in the
// direction of normal (which need not be pre-normalized).
func NewWall(p0, normal Vec2) WallObstacle {
	return WallObstacle{P0: p0, N: normal.Unit()}
}

// Beta projects the robot onto the wall: x̂ = P·x + (I−P)·P0 and
// v̂ = P·v with P = I − N·Nᵀ.
func (o WallObstacle) Beta(x, v Vec2) BetaAgent {
	proj := func(z Vec2) Vec2 { return z.Sub(o.N.Scale(o.N.Dot(z))) }
	return BetaAgent{
		Pos: proj(x).Add(o.P0.Sub(proj(o.P0))),
		Vel: proj(v),
		OK:  true,
	}
}

// Contains reports whether p is on the solid side of the wall.
func (o WallObstacle) Contains(p Vec2) bool {
	return p.Sub(o.P0).Dot(o.N) < 0
}

// Package geom provides the 2-D vector algebra and the Olfati-Saber
// analytic helper functions (σ-norm, bump functions, action functions)
// that the flocking controller and the physics engine are built on.
//
// Everything in this package is a pure function of its inputs; the
// flocking controller's determinism (and therefore the soundness of
// deterministic replay) rests on that property.
package geom

import "math"

// Vec2 is a two-dimensional vector. The simulated world is planar, as
// in the paper's evaluation (wheeled robots in a 100 m × 100 m arena).
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Zero2 is the zero vector.
var Zero2 = Vec2{}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Neg returns -v.
func (v Vec2) Neg() Vec2 { return Vec2{-v.X, -v.Y} }

// Dot returns the inner product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// NormSq returns ‖v‖².
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Norm returns the Euclidean norm ‖v‖.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns ‖v - w‖.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// DistSq returns ‖v - w‖².
func (v Vec2) DistSq(w Vec2) float64 { return v.Sub(w).NormSq() }

// Unit returns v/‖v‖, or the zero vector when ‖v‖ == 0.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Zero2
	}
	return v.Scale(1 / n)
}

// ClampAxes limits each component of v to [-limit, limit]. The paper
// caps robot acceleration at 5 m/s² per dimension (§4); this is the
// primitive that cap is built on.
func (v Vec2) ClampAxes(limit float64) Vec2 {
	return Vec2{clamp(v.X, -limit, limit), clamp(v.Y, -limit, limit)}
}

// ClampNorm limits ‖v‖ to at most limit, preserving direction.
func (v Vec2) ClampNorm(limit float64) Vec2 {
	n := v.Norm()
	if n <= limit || n == 0 {
		return v
	}
	return v.Scale(limit / n)
}

// Lerp returns v + t·(w - v).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// IsFinite reports whether both components are finite (no NaN/Inf).
// The physics engine rejects controller outputs that are not finite;
// a correct controller never produces them, so emitting one is treated
// as misbehavior.
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// ApproxEqual reports whether v and w differ by at most eps in each
// component. Intended for tests; protocol code compares exactly.
func (v Vec2) ApproxEqual(w Vec2, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package geom

import "math"

// This file implements the analytic machinery of Olfati-Saber's
// flocking framework (IEEE TAC 2006, [68] in the paper): the σ-norm
// and its gradient, the bump functions ρ_h, the uneven sigmoid σ₁, and
// the pairwise action functions φ_α / φ_β. Equation numbers refer to
// the original Olfati-Saber paper, matching the references used by the
// RoboRebound appendix (Table 3).

// SigmaNorm computes the σ-norm ‖z‖_σ = (√(1+ε‖z‖²) − 1)/ε (Eq. 8).
// Unlike the Euclidean norm it is differentiable everywhere, including
// at z = 0, which is what makes the gradient-based flocking terms
// well-defined when robots coincide.
func SigmaNorm(z Vec2, eps float64) float64 {
	return (math.Sqrt(1+eps*z.NormSq()) - 1) / eps
}

// SigmaNormScalar is the σ-norm of a scalar magnitude: (√(1+εz²)−1)/ε.
// Used to convert the interaction ranges r, d, r′, d′ of Table 3 into
// their σ-norm equivalents r_α, d_α, r_β, d_β.
func SigmaNormScalar(z, eps float64) float64 {
	return (math.Sqrt(1+eps*z*z) - 1) / eps
}

// SigmaGrad computes σ_ε(z) = z/√(1+ε‖z‖²) (Eq. 9), the gradient of
// the σ-norm. In the flocking control law this is the unit-like vector
// n_ij pointing from robot i toward robot j.
func SigmaGrad(z Vec2, eps float64) Vec2 {
	return z.Scale(1 / math.Sqrt(1+eps*z.NormSq()))
}

// Sigma1 is the uneven sigmoid σ₁(z) = z/√(1+z²) applied to a scalar.
func Sigma1(z float64) float64 { return z / math.Sqrt(1+z*z) }

// Sigma1Vec applies σ₁ to a vector: z/√(1+‖z‖²). This appears in the
// γ-agent (navigational feedback) term of the control law (Eq. 59).
func Sigma1Vec(z Vec2) Vec2 {
	return z.Scale(1 / math.Sqrt(1+z.NormSq()))
}

// Bump is the scalar bump function ρ_h(z) (Eq. 10): a C¹-smooth cutoff
// that is 1 on [0, h), falls along a half-cosine on [h, 1], and is 0
// elsewhere. h ∈ (0, 1) controls where the falloff begins; the paper
// uses h = 0.2 for φ_α and h = 0.9 for φ_β (Table 3).
func Bump(z, h float64) float64 {
	switch {
	case z < 0:
		return 0
	case z < h:
		return 1
	case z <= 1:
		return 0.5 * (1 + math.Cos(math.Pi*(z-h)/(1-h)))
	default:
		return 0
	}
}

// Phi is the uneven sigmoidal action function φ(z) (Eq. 15):
//
//	φ(z) = ½[(a+b)·σ₁(z+c) + (a−b)],  c = |a−b|/√(4ab)
//
// with 0 < a ≤ b. It is the attractive/repulsive "spring" profile
// between neighboring robots: negative (repulsive) for z below the
// equilibrium, positive (attractive) above, zero at z = 0 shifted by c.
func Phi(z, a, b float64) float64 {
	c := math.Abs(a-b) / math.Sqrt(4*a*b)
	return 0.5 * ((a+b)*Sigma1(z+c) + (a - b))
}

// PhiAlpha is the finite-range inter-robot action function φ_α(z)
// (Eq. 16): φ_α(z) = ρ_h(z/r_α)·φ(z − d_α). z, rAlpha, and dAlpha are
// all in σ-norm units. It vanishes for z ≥ r_α, so robots interact
// only with neighbors inside the interaction range.
func PhiAlpha(z, rAlpha, dAlpha, h, a, b float64) float64 {
	return Bump(z/rAlpha, h) * Phi(z-dAlpha, a, b)
}

// PhiBeta is the repulsive-only obstacle action function φ_β(z)
// (Eq. 48): φ_β(z) = ρ_h(z/d_β)·(σ₁(z − d_β) − 1). It is ≤ 0
// everywhere (obstacles never attract) and vanishes for z ≥ d_β.
func PhiBeta(z, dBeta, h float64) float64 {
	return Bump(z/dBeta, h) * (Sigma1(z-dBeta) - 1)
}

// Adjacency computes the element a_ij(x) ∈ [0, 1] of the spatial
// adjacency matrix (Eq. 11): ρ_h(‖x_j − x_i‖_σ / r_α). It doubles as
// the velocity-consensus weight in the damping term of the control law.
func Adjacency(xi, xj Vec2, rAlpha, h, eps float64) float64 {
	return Bump(SigmaNorm(xj.Sub(xi), eps)/rAlpha, h)
}

package geom

import (
	"math"
	"testing"

	"roborebound/internal/prng"
)

// Property tests over seeded random inputs: the existing unit tests
// pin specific values; these pin the algebraic identities the flocking
// controller's derivation assumes. The prng seed is fixed, so the
// sampled inputs — and therefore the test — are deterministic.

func randVec(s *prng.Source) Vec2 {
	return V(s.Range(-100, 100), s.Range(-100, 100))
}

func TestVectorAlgebraIdentities(t *testing.T) {
	s := prng.New(1)
	for i := 0; i < 500; i++ {
		v, w, u := randVec(s), randVec(s), randVec(s)
		k := s.Range(-10, 10)

		if got := v.Add(w).Sub(w); !got.ApproxEqual(v, 1e-9) {
			t.Fatalf("(v+w)-w = %v, want %v", got, v)
		}
		if got, want := v.Dot(w), w.Dot(v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("dot not symmetric: %v vs %v", got, want)
		}
		if got, want := v.Cross(w), -w.Cross(v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cross not antisymmetric: %v vs %v", got, want)
		}
		if got, want := v.Scale(k).Dot(w), k*v.Dot(w); math.Abs(got-want) > 1e-6 {
			t.Fatalf("dot not bilinear: %v vs %v", got, want)
		}
		if got, want := u.Add(v).Dot(w), u.Dot(w)+v.Dot(w); math.Abs(got-want) > 1e-6 {
			t.Fatalf("dot not distributive: %v vs %v", got, want)
		}
		// Cauchy–Schwarz with a tolerance for float rounding.
		if lhs, rhs := math.Abs(v.Dot(w)), v.Norm()*w.Norm(); lhs > rhs*(1+1e-12) {
			t.Fatalf("Cauchy–Schwarz violated: |v·w|=%v > ‖v‖‖w‖=%v", lhs, rhs)
		}
		// Triangle inequality.
		if lhs, rhs := v.Add(w).Norm(), v.Norm()+w.Norm(); lhs > rhs*(1+1e-12) {
			t.Fatalf("triangle inequality violated: %v > %v", lhs, rhs)
		}
		// Perp is a rotation: preserves norm, orthogonal to input.
		if got := v.Perp().Norm(); math.Abs(got-v.Norm()) > 1e-9 {
			t.Fatalf("Perp changed norm: %v vs %v", got, v.Norm())
		}
		if got := v.Dot(v.Perp()); math.Abs(got) > 1e-9 {
			t.Fatalf("Perp not orthogonal: v·v⊥ = %v", got)
		}
		// Unit has norm 1 (or is zero for the zero vector).
		if n := v.Norm(); n > 0 {
			if got := v.Unit().Norm(); math.Abs(got-1) > 1e-12 {
				t.Fatalf("Unit norm = %v", got)
			}
		}
		// ClampNorm never increases the norm and preserves direction.
		limit := s.Range(0.1, 50)
		c := v.ClampNorm(limit)
		if c.Norm() > limit*(1+1e-12) && c.Norm() > v.Norm() {
			t.Fatalf("ClampNorm(%v) grew the vector: %v -> %v", limit, v.Norm(), c.Norm())
		}
		if v.Norm() > 0 && math.Abs(v.Cross(c)) > 1e-6*v.Norm()*math.Max(c.Norm(), 1) {
			t.Fatalf("ClampNorm changed direction: cross = %v", v.Cross(c))
		}
		// Lerp endpoints.
		if got := v.Lerp(w, 0); !got.ApproxEqual(v, 1e-12) {
			t.Fatalf("Lerp(0) = %v, want %v", got, v)
		}
		if got := v.Lerp(w, 1); !got.ApproxEqual(w, 1e-9) {
			t.Fatalf("Lerp(1) = %v, want %v", got, w)
		}
	}
}

// The σ-norm machinery must satisfy the properties Olfati-Saber's
// stability proof uses: σ-norm nonnegative and zero only at zero,
// gradient norm < 1, bump in [0,1] and monotonically nonincreasing,
// φ_β never attractive.
func TestSigmaMachineryProperties(t *testing.T) {
	s := prng.New(2)
	const eps = 0.1
	for i := 0; i < 500; i++ {
		z := randVec(s)

		sn := SigmaNorm(z, eps)
		if sn < 0 {
			t.Fatalf("σ-norm negative: %v", sn)
		}
		if z == Zero2 && sn != 0 {
			t.Fatalf("σ-norm of zero = %v", sn)
		}
		// σ-norm agrees with its scalar form on the magnitude.
		if got := SigmaNormScalar(z.Norm(), eps); math.Abs(got-sn) > 1e-6 {
			t.Fatalf("scalar/vector σ-norm disagree: %v vs %v", got, sn)
		}
		// Gradient is a contraction: ‖σ_ε(z)‖ < 1/√ε · anything finite;
		// specifically ‖σ_ε(z)‖ ≤ ‖z‖ and bounded by 1/√ε.
		g := SigmaGrad(z, eps)
		if g.Norm() > z.Norm()*(1+1e-12) {
			t.Fatalf("σ-grad longer than input: %v > %v", g.Norm(), z.Norm())
		}
		if g.Norm() > 1/math.Sqrt(eps)+1e-9 {
			t.Fatalf("σ-grad exceeds 1/√ε: %v", g.Norm())
		}

		x := s.Range(-0.5, 1.5)
		h := s.Range(0.1, 0.9)
		b := Bump(x, h)
		if b < 0 || b > 1 {
			t.Fatalf("bump out of range: ρ_%v(%v) = %v", h, x, b)
		}
		// Monotone nonincreasing on [0, 1].
		if x >= 0 && x+1e-3 <= 1 {
			if b2 := Bump(x+1e-3, h); b2 > b+1e-12 {
				t.Fatalf("bump increased: ρ(%v)=%v < ρ(%v)=%v", x, b, x+1e-3, b2)
			}
		}

		// σ₁ is odd, bounded by 1, and sign-preserving.
		zz := s.Range(-20, 20)
		if got := Sigma1(-zz) + Sigma1(zz); math.Abs(got) > 1e-12 {
			t.Fatalf("σ₁ not odd at %v", zz)
		}
		if got := math.Abs(Sigma1(zz)); got >= 1 {
			t.Fatalf("|σ₁(%v)| = %v ≥ 1", zz, got)
		}

		// φ_β ≤ 0 everywhere (obstacles never attract) and vanishes
		// beyond d_β.
		dBeta := s.Range(1, 30)
		if got := PhiBeta(s.Range(0, 40), dBeta, 0.9); got > 0 {
			t.Fatalf("φ_β attractive: %v", got)
		}
		if got := PhiBeta(dBeta+s.Range(0, 10), dBeta, 0.9); got != 0 {
			t.Fatalf("φ_β nonzero beyond range: %v", got)
		}

		// φ_α vanishes beyond r_α (finite interaction range).
		rAlpha := s.Range(1, 30)
		if got := PhiAlpha(rAlpha+s.Range(0, 10), rAlpha, rAlpha/2, 0.2, 1, 5); got != 0 {
			t.Fatalf("φ_α nonzero beyond r_α: %v", got)
		}
		// φ at the equilibrium distance is zero: φ(0 + c shifted) —
		// Phi(0,a,b) with a=b has c=0 and σ₁(0)=0.
		if got := Phi(0, 3, 3); got != 0 {
			t.Fatalf("φ(0) with a=b: %v", got)
		}
	}
}

// Adjacency is symmetric in its arguments (a_ij = a_ji), which the
// velocity-consensus term requires for momentum conservation.
func TestAdjacencySymmetric(t *testing.T) {
	s := prng.New(3)
	for i := 0; i < 200; i++ {
		xi, xj := randVec(s), randVec(s)
		aij := Adjacency(xi, xj, 10, 0.2, 0.1)
		aji := Adjacency(xj, xi, 10, 0.2, 0.1)
		if math.Abs(aij-aji) > 1e-12 {
			t.Fatalf("adjacency asymmetric: %v vs %v", aij, aji)
		}
		if aij < 0 || aij > 1 {
			t.Fatalf("adjacency out of [0,1]: %v", aij)
		}
	}
}

package spatial

import (
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/prng"
)

// The micro pair behind BENCH_scale.json's grid-level numbers: one
// query against N=500 points spread over a 64 m grid (the Fig. 7
// swarm-scale density), grid vs linear scan.

func benchPoints(n int) []Member {
	rng := prng.New(1)
	side := 23 // ≈ ceil(sqrt(500)) grid columns
	pts := make([]Member, n)
	for i := range pts {
		x := float64(i%side)*64 + rng.Range(-1, 1)
		y := float64(i/side)*64 + rng.Range(-1, 1)
		pts[i] = Member{ID: int32(i), Pos: geom.V(x, y)}
	}
	return pts
}

func BenchmarkWithinGrid_N500(b *testing.B) {
	pts := benchPoints(500)
	g := &Grid{}
	g.Reset(100)
	for _, m := range pts {
		g.Add(m.ID, m.Pos)
	}
	g.Build()
	var buf []Member
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pts[i%len(pts)].Pos, 200, buf)
	}
	_ = buf
}

func BenchmarkWithinBrute_N500(b *testing.B) {
	pts := benchPoints(500)
	var buf []Member
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		center := pts[i%len(pts)].Pos
		const rr = 200.0 * 200.0
		buf = buf[:0]
		for _, m := range pts {
			if m.Pos.DistSq(center) > rr {
				continue
			}
			buf = append(buf, m)
		}
	}
	_ = buf
}

func BenchmarkGridRebuild_N500(b *testing.B) {
	pts := benchPoints(500)
	g := &Grid{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset(100)
		for _, m := range pts {
			g.Add(m.ID, m.Pos)
		}
		g.Build()
	}
}

package spatial

import (
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/prng"
)

// bruteWithin is the reference implementation the grid must match
// exactly: the predicate !(d² > r²) over every member, sorted by ID.
func bruteWithin(members []Member, center geom.Vec2, r float64) []Member {
	rr := r * r
	var out []Member
	for _, m := range members {
		if m.Pos.DistSq(center) > rr {
			continue
		}
		out = append(out, m)
	}
	// Members are generated with ascending IDs, so out is sorted.
	return out
}

func buildGrid(t *testing.T, cell float64, members []Member) *Grid {
	t.Helper()
	g := &Grid{}
	g.Reset(cell)
	for _, m := range members {
		g.Add(m.ID, m.Pos)
	}
	g.Build()
	if g.Len() != len(members) {
		t.Fatalf("grid holds %d members, added %d", g.Len(), len(members))
	}
	return g
}

func assertSameMembers(t *testing.T, label string, got, want []Member) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d members, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		// Compare float bits, not values: NaN positions must round-trip.
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Pos.X) != math.Float64bits(want[i].Pos.X) ||
			math.Float64bits(got[i].Pos.Y) != math.Float64bits(want[i].Pos.Y) {
			t.Fatalf("%s: member %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestWithinMatchesBruteForceRandom is the core property test:
// randomized positions (clustered, grid-aligned, cell-edge, and
// NaN-adjacent), randomized radii and cell sizes — the grid must
// return exactly the brute-force candidate set, every time.
func TestWithinMatchesBruteForceRandom(t *testing.T) {
	rng := prng.New(0xBEEF)
	iters := 400
	if testing.Short() {
		iters = 80
	}
	for iter := 0; iter < iters; iter++ {
		cell := []float64{0.5, 1, 2.5, 10, 99.5, 1000}[rng.Intn(6)]
		n := rng.Intn(120)
		members := make([]Member, 0, n)
		for i := 0; i < n; i++ {
			var p geom.Vec2
			switch rng.Intn(5) {
			case 0: // uniform spread
				p = geom.V(rng.Range(-500, 500), rng.Range(-500, 500))
			case 1: // tight cluster (all in one or two cells)
				p = geom.V(100+rng.Range(0, cell/4), -30+rng.Range(0, cell/4))
			case 2: // exactly on cell boundaries
				p = geom.V(float64(rng.Intn(20)-10)*cell, float64(rng.Intn(20)-10)*cell)
			case 3: // one ulp around a cell boundary
				edge := float64(rng.Intn(10)) * cell
				switch rng.Intn(3) {
				case 0:
					edge = math.Nextafter(edge, math.Inf(1))
				case 1:
					edge = math.Nextafter(edge, math.Inf(-1))
				}
				p = geom.V(edge, edge)
			default: // occasionally non-finite
				vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), rng.Range(-50, 50)}
				p = geom.V(vals[rng.Intn(4)], vals[rng.Intn(4)])
			}
			members = append(members, Member{ID: int32(i), Pos: p})
		}
		g := buildGrid(t, cell, members)

		var buf []Member
		queries := 20
		for q := 0; q < queries; q++ {
			var center geom.Vec2
			if len(members) > 0 && rng.Intn(3) == 0 {
				center = members[rng.Intn(len(members))].Pos // query at a member
			} else {
				center = geom.V(rng.Range(-600, 600), rng.Range(-600, 600))
			}
			r := []float64{0, cell / 2, cell, 2 * cell, 7.3 * cell, 300}[rng.Intn(6)]
			buf = g.Within(center, r, buf)
			want := bruteWithin(members, center, r)
			assertSameMembers(t, "random query", buf, want)
		}
	}
}

// TestWithinExactBoundaryDistance pins the boundary semantics: a
// member at exactly distance r is inside (predicate is !(d² > r²)),
// one ulp beyond is outside — and members parked precisely on cell
// edges are never lost to floor() on either side.
func TestWithinExactBoundaryDistance(t *testing.T) {
	const cell = 2.0
	members := []Member{
		{ID: 1, Pos: geom.V(0, 0)},
		{ID: 2, Pos: geom.V(10, 0)},                         // exactly r away
		{ID: 3, Pos: geom.V(math.Nextafter(10, 11), 0)},     // one ulp outside
		{ID: 4, Pos: geom.V(math.Nextafter(10, 9), 0)},      // one ulp inside
		{ID: 5, Pos: geom.V(cell, cell)},                    // exactly on a cell corner
		{ID: 6, Pos: geom.V(-cell, -cell)},                  // negative cell corner
		{ID: 7, Pos: geom.V(math.Nextafter(cell, 0), cell)}, // ulp left of the corner
	}
	g := buildGrid(t, cell, members)
	got := g.Within(geom.V(0, 0), 10, nil)
	want := bruteWithin(members, geom.V(0, 0), 10)
	assertSameMembers(t, "boundary", got, want)
	for _, m := range got {
		if m.ID == 3 {
			t.Fatalf("member one ulp outside r was returned")
		}
	}
	has := func(id int32) bool {
		for _, m := range got {
			if m.ID == id {
				return true
			}
		}
		return false
	}
	for _, id := range []int32{1, 2, 4, 5, 6, 7} {
		if !has(id) {
			t.Fatalf("member %d (inside or exactly at r) missing from result", id)
		}
	}
}

// TestWithinNaNAndInfinite pins the conservative non-finite semantics:
// NaN-positioned members are always candidates (NaN distance is not >
// r²), infinite positions are infinitely far (excluded for finite r),
// and non-finite centers or radii return the brute-force set.
func TestWithinNaNAndInfinite(t *testing.T) {
	members := []Member{
		{ID: 1, Pos: geom.V(0, 0)},
		{ID: 2, Pos: geom.V(math.NaN(), 0)},
		{ID: 3, Pos: geom.V(math.Inf(1), 0)},
		{ID: 4, Pos: geom.V(3, 4)},
	}
	g := buildGrid(t, 1.0, members)

	got := g.Within(geom.V(0, 0), 5, nil)
	assertSameMembers(t, "NaN member", got, bruteWithin(members, geom.V(0, 0), 5))
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 4 {
		t.Fatalf("want members {1 (origin), 2 (NaN), 4 (dist 5 exactly)}, got %v", got)
	}

	for _, tc := range []struct {
		name   string
		center geom.Vec2
		r      float64
	}{
		{"NaN center", geom.V(math.NaN(), 0), 5},
		{"Inf center", geom.V(math.Inf(-1), 2), 5},
		{"Inf radius", geom.V(1, 1), math.Inf(1)},
		{"NaN radius", geom.V(1, 1), math.NaN()},
		{"huge radius", geom.V(1, 1), 1e300},
	} {
		got := g.Within(tc.center, tc.r, nil)
		assertSameMembers(t, tc.name, got, bruteWithin(members, tc.center, tc.r))
	}
}

// TestWithinFarCoordinates exercises the int32 coordinate clamp: a
// population around ±2^40 (cells overflow int32 without the clamp)
// must still answer queries exactly.
func TestWithinFarCoordinates(t *testing.T) {
	const far = 1 << 40
	members := []Member{
		{ID: 1, Pos: geom.V(far, far)},
		{ID: 2, Pos: geom.V(far+3, far)},
		{ID: 3, Pos: geom.V(far+1000, far)},
		{ID: 4, Pos: geom.V(-far, -far)},
	}
	g := buildGrid(t, 1.0, members)
	for _, center := range []geom.Vec2{geom.V(far, far), geom.V(-far, -far), geom.V(0, 0)} {
		for _, r := range []float64{0, 5, 2 * far} {
			got := g.Within(center, r, nil)
			assertSameMembers(t, "far coords", got, bruteWithin(members, center, r))
		}
	}
}

// TestGridDeterministicAcrossInsertionOrder: the same member set added
// in different orders must produce identical query results.
func TestGridDeterministicAcrossInsertionOrder(t *testing.T) {
	rng := prng.New(42)
	members := make([]Member, 60)
	for i := range members {
		members[i] = Member{ID: int32(i), Pos: geom.V(rng.Range(-40, 40), rng.Range(-40, 40))}
	}
	g1 := buildGrid(t, 5, members)
	shuffled := append([]Member(nil), members...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	g2 := buildGrid(t, 5, shuffled)
	for q := 0; q < 50; q++ {
		center := geom.V(rng.Range(-50, 50), rng.Range(-50, 50))
		r := rng.Range(0, 30)
		a := g1.Within(center, r, nil)
		b := g2.Within(center, r, nil)
		assertSameMembers(t, "insertion order", a, b)
	}
}

// TestGridReuse: Reset must fully clear prior state, and a reused
// result buffer must not leak previous query results.
func TestGridReuse(t *testing.T) {
	g := &Grid{}
	g.Reset(1)
	g.Add(1, geom.V(0, 0))
	g.Add(2, geom.V(100, 100))
	g.Build()
	buf := g.Within(geom.V(0, 0), 500, nil)
	if len(buf) != 2 {
		t.Fatalf("want both members, got %v", buf)
	}
	g.Reset(2)
	g.Add(7, geom.V(1, 1))
	g.Build()
	buf = g.Within(geom.V(0, 0), 500, buf)
	if len(buf) != 1 || buf[0].ID != 7 {
		t.Fatalf("stale members after Reset: %v", buf)
	}
}

func TestGridPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("zero cell", func() { (&Grid{}).Reset(0) })
	expectPanic("negative cell", func() { (&Grid{}).Reset(-1) })
	expectPanic("NaN cell", func() { (&Grid{}).Reset(math.NaN()) })
	expectPanic("Inf cell", func() { (&Grid{}).Reset(math.Inf(1)) })
	expectPanic("query before Build", func() {
		g := &Grid{}
		g.Reset(1)
		g.Within(geom.V(0, 0), 1, nil)
	})
	expectPanic("Add after Build", func() {
		g := &Grid{}
		g.Reset(1)
		g.Build()
		g.Add(1, geom.V(0, 0))
	})
}

// TestWithinQueryAllocFree pins that steady-state rebuild+query cycles
// do not allocate once the backing arrays have grown.
func TestWithinQueryAllocFree(t *testing.T) {
	rng := prng.New(7)
	pts := make([]geom.Vec2, 200)
	for i := range pts {
		pts[i] = geom.V(rng.Range(-100, 100), rng.Range(-100, 100))
	}
	g := &Grid{}
	buf := make([]Member, 0, len(pts))
	cycle := func() {
		g.Reset(10)
		for i, p := range pts {
			g.Add(int32(i), p)
		}
		g.Build()
		for _, p := range pts[:20] {
			buf = g.Within(p, 25, buf)
		}
	}
	cycle() // warm up the backing arrays
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Fatalf("steady-state rebuild+query allocates %.1f times per cycle, want 0", allocs)
	}
}

// bruteNearPairs is the reference candidate-pair superset NearPairs
// must cover: every unordered pair of finite members within maxDist
// (the callers' strict `< r²` predicate accepts at most these).
func bruteNearPairs(members []Member, maxDist float64) map[[2]int32]bool {
	want := map[[2]int32]bool{}
	for i, a := range members {
		if !a.Pos.IsFinite() {
			continue
		}
		for _, b := range members[i+1:] {
			if !b.Pos.IsFinite() {
				continue
			}
			if b.Pos.DistSq(a.Pos) <= maxDist*maxDist {
				lo, hi := a.ID, b.ID
				if hi < lo {
					lo, hi = hi, lo
				}
				want[[2]int32{lo, hi}] = true
			}
		}
	}
	return want
}

// TestNearPairsCoversBruteForce is the candidate-pair property test:
// for randomized layouts (uniform, stacked, cell-aligned, ulp-edged,
// non-finite) NearPairs must return a duplicate-free, (lo, hi)-ordered
// pair list covering every finite pair within maxDist.
func TestNearPairsCoversBruteForce(t *testing.T) {
	rng := prng.New(0xCAFE)
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for iter := 0; iter < iters; iter++ {
		cell := []float64{1, 2, 8, 100}[rng.Intn(4)]
		maxDist := cell / []float64{2, 2.5, 4, 1000}[rng.Intn(4)]
		n := rng.Intn(150)
		members := make([]Member, 0, n)
		for i := 0; i < n; i++ {
			var p geom.Vec2
			switch rng.Intn(5) {
			case 0: // dense uniform: many in-range pairs
				p = geom.V(rng.Range(-3*cell, 3*cell), rng.Range(-3*cell, 3*cell))
			case 1: // identical stacked positions
				p = geom.V(4*cell, 4*cell)
			case 2: // exactly on cell corners
				p = geom.V(float64(rng.Intn(8)-4)*cell, float64(rng.Intn(8)-4)*cell)
			case 3: // one ulp around a cell edge
				edge := float64(rng.Intn(4)) * cell
				if rng.Intn(2) == 0 {
					edge = math.Nextafter(edge, math.Inf(1))
				} else {
					edge = math.Nextafter(edge, math.Inf(-1))
				}
				p = geom.V(edge, edge-maxDist/2)
			default: // occasionally non-finite
				vals := []float64{math.NaN(), math.Inf(1), rng.Range(-cell, cell)}
				p = geom.V(vals[rng.Intn(3)], vals[rng.Intn(3)])
			}
			members = append(members, Member{ID: int32(i), Pos: p})
		}
		g := buildGrid(t, cell, members)
		pairs := g.NearPairs(maxDist, nil)

		seen := map[[2]int32]bool{}
		for _, pr := range pairs {
			if pr[0] >= pr[1] {
				t.Fatalf("iter %d: pair %v not (lo, hi) ordered", iter, pr)
			}
			if seen[pr] {
				t.Fatalf("iter %d: duplicate pair %v", iter, pr)
			}
			seen[pr] = true
			for _, id := range pr {
				if !members[id].Pos.IsFinite() {
					t.Fatalf("iter %d: non-finite member %d in pair %v", iter, id, pr)
				}
			}
		}
		for pr := range bruteNearPairs(members, maxDist) {
			if !seen[pr] {
				t.Fatalf("iter %d: pair %v within %g missing (cell %g, %d members)",
					iter, pr, maxDist, cell, n)
			}
		}
	}
}

// TestNearPairsPreconditionPanics pins the 2·maxDist ≤ cell guard: a
// radius the one-cell stencil cannot cover must refuse loudly rather
// than silently miss pairs.
func TestNearPairsPreconditionPanics(t *testing.T) {
	g := buildGrid(t, 2.0, []Member{{ID: 0, Pos: geom.V(0, 0)}})
	for _, r := range []float64{1.001, 5, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("maxDist %v with cell 2: expected panic", r)
				}
			}()
			g.NearPairs(r, nil)
		}()
	}
	if got := g.NearPairs(1.0, nil); len(got) != 0 { // exactly cell/2 is allowed
		t.Fatalf("single member produced pairs: %v", got)
	}
}

// TestBuildSortPathsAgree pins that the radix build (members added in
// ID order over a compact region) and the comparison build (same
// members added in reverse, defeating idsOrdered) produce identical
// query results — the two sorts must be observationally the same index.
func TestBuildSortPathsAgree(t *testing.T) {
	rng := prng.New(42)
	members := make([]Member, 300)
	for i := range members {
		// Several members per cell so key ties exercise tie ordering.
		members[i] = Member{ID: int32(i), Pos: geom.V(rng.Range(0, 40), rng.Range(0, 40))}
	}
	fwd := buildGrid(t, 4, members)
	rev := &Grid{}
	rev.Reset(4)
	for i := len(members) - 1; i >= 0; i-- {
		rev.Add(members[i].ID, members[i].Pos)
	}
	rev.Build()

	var bufA, bufB []Member
	for q := 0; q < 50; q++ {
		center := geom.V(rng.Range(-5, 45), rng.Range(-5, 45))
		r := rng.Range(0, 10)
		bufA = fwd.Within(center, r, bufA)
		bufB = rev.Within(center, r, bufB)
		assertSameMembers(t, "radix vs comparison build", bufA, bufB)
	}
	pa := fwd.NearPairs(2, nil)
	pb := rev.NearPairs(2, nil)
	if len(pa) != len(pb) {
		t.Fatalf("pair counts differ: %d vs %d", len(pa), len(pb))
	}
	pm := map[[2]int32]bool{}
	for _, pr := range pa {
		pm[pr] = true
	}
	for _, pr := range pb {
		if !pm[pr] {
			t.Fatalf("pair %v only in reverse-order build", pr)
		}
	}
}

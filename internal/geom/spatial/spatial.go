// Package spatial provides a deterministic uniform-grid index over 2-D
// points, built for the simulator's two quadratic hot paths: radio
// delivery (which robots are within decode range of a transmitter?)
// and collision detection (which bodies are within the crash radius?).
//
// Determinism is the design constraint, not a nicety: the simulation
// promises byte-identical runs for identical (scenario, seed), and the
// differential test layer at the repository root proves the indexed
// paths byte-identical to the brute-force ones. The grid therefore
// avoids every source of iteration-order nondeterminism:
//
//   - No maps. Cells are flat slices sorted by (cell key, member ID),
//     with a parallel table of unique keys for binary search. Queries
//     never range over a Go map, so reboundlint's determinism analyzer
//     passes with no //rebound: hatches.
//   - Query results are returned sorted ascending by member ID,
//     independent of insertion order and cell layout.
//   - No wall clock, no global RNG, no allocation-dependent behavior.
//
// Correctness contract: Within(center, r) returns exactly the members
// whose squared distance to center does not exceed r² under the
// predicate !(d² > r²) — the same float comparison a brute-force scan
// would make, NaN included (a NaN distance is *not* greater than r²,
// so such members are returned; the radio's power check has the same
// conservative semantics). The grid is a pure accelerator: it must
// never change which members pass the predicate, only how many are
// examined. Members at non-finite positions live in a "loose" bucket
// that every query scans, so they can never be lost to cell-coordinate
// overflow.
package spatial

import (
	"math"
	"math/bits"
	"slices"

	"roborebound/internal/geom"
)

// Member is one indexed point. IDs must be unique within a grid; the
// callers index robots by wire.RobotID or bodies by slice position.
type Member struct {
	ID  int32
	Pos geom.Vec2
}

type slot struct {
	key uint64
	m   Member
}

// maxCoord bounds cell coordinates. float→int conversion of an
// out-of-range value is unspecified in Go, so coordinates saturate
// here first; 2^30 cells per axis is far beyond any scenario, and
// everything past the clamp lands in the same boundary cell (which a
// query near the boundary also reaches), preserving the superset
// property.
const maxCoord = 1 << 30

// Grid is a uniform-cell spatial index. Typical use:
//
//	g.Reset(cellSize)
//	for each point: g.Add(id, pos)
//	g.Build()
//	for each query: buf = g.Within(center, r, buf[:0])
//
// A Grid retains its backing arrays across Reset, so per-tick rebuilds
// are allocation-free at steady state.
type Grid struct {
	cell float64
	inv  float64

	slots []slot   // finite-position members, sorted by (cell key, ID) after Build
	keys  []uint64 // unique cell keys, ascending; parallel to spans
	spans [][2]int32
	loose []Member // non-finite positions: candidates for every query
	built bool

	// idsOrdered tracks whether Add calls arrived in nondecreasing ID
	// order (both hot callers add robots/bodies that way). When true,
	// Build may radix-sort by cell key alone: the stable scatter keeps
	// ties in Add order, which then already is ID order.
	idsOrdered bool
	lastSlotID int32

	// Radix-sort scratch, retained across builds.
	tmpSlots  []slot
	ck, cktmp []uint32
}

// Reset clears the grid and sets the cell size. Panics unless cellSize
// is positive and finite (a degenerate cell size silently collapsing
// every point into one cell would hide a caller bug).
func (g *Grid) Reset(cellSize float64) {
	if !(cellSize > 0) || math.IsInf(cellSize, 0) {
		panic("spatial: cell size must be positive and finite")
	}
	g.cell = cellSize
	g.inv = 1 / cellSize
	g.slots = g.slots[:0]
	g.keys = g.keys[:0]
	g.spans = g.spans[:0]
	g.loose = g.loose[:0]
	g.built = false
	g.idsOrdered = true
	g.lastSlotID = math.MinInt32
}

// CellSize returns the current cell size.
func (g *Grid) CellSize() float64 { return g.cell }

// Len returns the number of indexed members.
func (g *Grid) Len() int { return len(g.slots) + len(g.loose) }

// coordClamp converts a floored cell coordinate to int32, saturating
// at ±maxCoord. NaN (only reachable from a non-finite input, which the
// callers route elsewhere) maps to 0 — an arbitrary but fixed choice.
func coordClamp(f float64) int32 {
	switch {
	case f >= maxCoord:
		return maxCoord
	case f <= -maxCoord:
		return -maxCoord
	case math.IsNaN(f):
		return 0
	}
	return int32(f)
}

// cellCoord maps one axis position to its cell coordinate. The float
// multiply and floor are monotone non-decreasing, which the ±1 query
// ring in Within relies on.
func (g *Grid) cellCoord(v float64) int32 {
	return coordClamp(math.Floor(v * g.inv))
}

// coordBias shifts clamped coordinates into unsigned range before
// packing, so key order is lexicographic (cx, cy) order: all keys of
// one grid column form one contiguous key range, which Within scans
// with a single binary search per column.
const coordBias = 1 << 30

func pack(cx, cy int32) uint64 {
	ux := uint32(int64(cx) + coordBias)
	uy := uint32(int64(cy) + coordBias)
	return uint64(ux)<<32 | uint64(uy)
}

// Add indexes one member. Call between Reset and Build.
func (g *Grid) Add(id int32, pos geom.Vec2) {
	if g.built {
		panic("spatial: Add after Build (Reset first)")
	}
	if !pos.IsFinite() {
		g.loose = append(g.loose, Member{ID: id, Pos: pos})
		return
	}
	if id < g.lastSlotID {
		g.idsOrdered = false
	}
	g.lastSlotID = id
	key := pack(g.cellCoord(pos.X), g.cellCoord(pos.Y))
	g.slots = append(g.slots, slot{key: key, m: Member{ID: id, Pos: pos}})
}

// Build finalizes the index: sorts members into (cell key, ID) order
// and materializes the unique-key span table.
func (g *Grid) Build() {
	g.sortSlots()
	slices.SortFunc(g.loose, memberByID)
	for i := 0; i < len(g.slots); {
		j := i + 1
		for j < len(g.slots) && g.slots[j].key == g.slots[i].key {
			j++
		}
		g.keys = append(g.keys, g.slots[i].key)
		g.spans = append(g.spans, [2]int32{int32(i), int32(j)})
		i = j
	}
	g.built = true
}

// sortSlots puts g.slots into (cell key, ID) order. The per-tick
// rebuild makes this the most expensive step of Build, so when the
// members arrived in ID order and the occupied region is compact it
// uses a two-pass stable radix sort on rebased cell keys instead of a
// comparison sort; both paths produce the identical ordering, because
// key ties under the stable radix keep Add order, which idsOrdered
// guarantees is ID order.
func (g *Grid) sortSlots() {
	if g.idsOrdered && g.radixSortSlots() {
		return
	}
	slices.SortFunc(g.slots, func(a, b slot) int {
		switch {
		case a.key != b.key:
			if a.key < b.key {
				return -1
			}
			return 1
		case a.m.ID != b.m.ID:
			if a.m.ID < b.m.ID {
				return -1
			}
			return 1
		}
		return 0
	})
}

// radixBits is the digit width of one radix pass; two passes cover any
// occupied region of up to 2^(2·radixBits) rebased cells.
const radixBits = 11

// radixSortSlots stable-sorts g.slots by cell key when the occupied
// bounding box is small enough for two counting passes, reporting
// whether it did. Rebasing to the occupied box keeps the compact key
// order-isomorphic to the packed key: compact = (ux−minUx)<<bitsY |
// (uy−minUy) compares exactly like (ux, uy) lexicographic order, which
// is packed-key order.
func (g *Grid) radixSortSlots() bool {
	n := len(g.slots)
	if n < 48 {
		return false // comparison sort wins on tiny builds
	}
	minX, minY := uint32(math.MaxUint32), uint32(math.MaxUint32)
	maxX, maxY := uint32(0), uint32(0)
	for i := range g.slots {
		x, y := uint32(g.slots[i].key>>32), uint32(g.slots[i].key)
		minX, maxX = min(minX, x), max(maxX, x)
		minY, maxY = min(minY, y), max(maxY, y)
	}
	bitsY := bits.Len32(maxY - minY)
	totalBits := bits.Len32(maxX-minX) + bitsY
	if totalBits > 2*radixBits {
		return false // population too spread out for two passes
	}
	if cap(g.tmpSlots) < n {
		g.tmpSlots = make([]slot, n)
		g.ck = make([]uint32, n)
		g.cktmp = make([]uint32, n)
	}
	src, dst := g.slots, g.tmpSlots[:n]
	ck, cktmp := g.ck[:n], g.cktmp[:n]
	for i := range src {
		x, y := uint32(src[i].key>>32), uint32(src[i].key)
		ck[i] = (x-minX)<<bitsY | (y - minY)
	}
	for shift := 0; shift < totalBits; shift += radixBits {
		var hist [1 << radixBits]int32
		for _, k := range ck {
			hist[(k>>shift)&(1<<radixBits-1)]++
		}
		var sum int32
		for d := range hist {
			hist[d], sum = sum, sum+hist[d]
		}
		for i, s := range src {
			d := (ck[i] >> shift) & (1<<radixBits - 1)
			dst[hist[d]] = s
			cktmp[hist[d]] = ck[i]
			hist[d]++
		}
		src, dst = dst, src
		ck, cktmp = cktmp, ck
	}
	if &src[0] != &g.slots[0] {
		copy(g.slots, src)
	}
	return true
}

func memberByID(a, b Member) int {
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// Within returns every member m with !(DistSq(m.Pos, center) > r*r),
// ascending by ID. buf is scratch storage: its contents are discarded
// and its backing array reused for the result.
//
// Superset-before-filter argument for the cell walk: a member passing
// the predicate has float d² ≤ r², hence per-axis real offset at most
// r·(1+4ε) — within one ulp-scaled sliver of r, astronomically smaller
// than a cell for any coordinate the int32 clamp admits (|coord| ≤
// 2^30 ⇒ ε·|x| ≤ 2⁻²²·cell). cellCoord is monotone, so every such
// member's cell lies inside [cellCoord(center±r) ∓ 1] per axis — the
// walked box. Members beyond the clamp share the saturated boundary
// cell with the query edge. Non-finite centers, non-finite radii, and
// query boxes wider than the population fall back to a linear scan,
// which is the brute-force predicate by construction.
//
//rebound:hotpath per-frame candidate query in radio delivery
func (g *Grid) Within(center geom.Vec2, r float64, buf []Member) []Member {
	if !g.built {
		panic("spatial: Within before Build")
	}
	out := buf[:0]
	rr := r * r
	if !center.IsFinite() || math.IsNaN(r) || math.IsInf(r, 0) {
		return g.scanAll(center, rr, out)
	}
	cx0 := coordClamp(math.Floor((center.X-r)*g.inv)) - 1
	cx1 := coordClamp(math.Floor((center.X+r)*g.inv)) + 1
	cy0 := coordClamp(math.Floor((center.Y-r)*g.inv)) - 1
	cy1 := coordClamp(math.Floor((center.Y+r)*g.inv)) + 1
	// A box with more cells than occupied cells costs more to walk
	// than scanning every member once.
	if boxCells := (int64(cx1-cx0) + 1) * (int64(cy1-cy0) + 1); boxCells > int64(len(g.keys)) {
		return g.scanAll(center, rr, out)
	}
	for cx := cx0; cx <= cx1; cx++ {
		lo, hi := pack(cx, cy0), pack(cx, cy1)
		i, _ := slices.BinarySearch(g.keys, lo)
		for ; i < len(g.keys) && g.keys[i] <= hi; i++ {
			sp := g.spans[i]
			for _, s := range g.slots[sp[0]:sp[1]] {
				if s.m.Pos.DistSq(center) > rr {
					continue
				}
				out = append(out, s.m)
			}
		}
	}
	for _, m := range g.loose {
		if m.Pos.DistSq(center) > rr {
			continue // never true for NaN distances: those stay in
		}
		out = append(out, m)
	}
	slices.SortFunc(out, memberByID)
	return out
}

// NearPairs appends to buf every unordered pair of finite-position
// members whose cell coordinates differ by at most one per axis —
// a superset of every pair with DistSq < maxDist², the form collision
// detection needs. Each pair appears exactly once as {lower ID,
// higher ID}; the overall order is unspecified (callers that need a
// deterministic visit order sort the result, which is cheap because
// candidate pairs are sparse). buf is scratch: contents discarded,
// backing array reused.
//
// The one-cell reach is only sound when 2·maxDist ≤ cell, so NearPairs
// panics otherwise: then per-axis separation of a qualifying pair is
// at most cell/2 in reals, and the computed cell coordinates — one
// rounding each of x·inv, |x·inv| ≤ 2^30 admitted by the clamp — differ
// by at most 0.5 + 2⁻²¹ < 1 before flooring, so the floors differ by at
// most one. Saturation at the clamp only moves coordinates closer
// together. Members at non-finite positions are excluded by
// construction: their distance to anything is +Inf or NaN, never
// < a finite maxDist², so a strict less-than predicate can never
// accept them (note this differs from Within's !(d² > r²) contract,
// which NaN passes).
//
// Unlike Within there is no distance filter here: the caller applies
// its own predicate, so the grid cannot disagree with brute force
// about boundary floats.
//
//rebound:hotpath per-tick collision candidate scan
func (g *Grid) NearPairs(maxDist float64, buf [][2]int32) [][2]int32 {
	if !g.built {
		panic("spatial: NearPairs before Build")
	}
	if !(2*maxDist <= g.cell) {
		panic("spatial: NearPairs requires 2*maxDist <= cell size")
	}
	out := buf[:0]
	//rebound:alloc non-escaping closure, stack-allocated; called only below
	cross := func(a, b int) {
		sa, sb := g.spans[a], g.spans[b]
		for i := sa[0]; i < sa[1]; i++ {
			ida := g.slots[i].m.ID
			for j := sb[0]; j < sb[1]; j++ {
				idb := g.slots[j].m.ID
				if ida < idb {
					out = append(out, [2]int32{ida, idb})
				} else {
					out = append(out, [2]int32{idb, ida})
				}
			}
		}
	}
	n := len(g.keys)
	for ci := 0; ci < n; ci++ {
		sp := g.spans[ci]
		for i := sp[0]; i < sp[1]; i++ {
			for j := i + 1; j < sp[1]; j++ {
				out = append(out, [2]int32{g.slots[i].m.ID, g.slots[j].m.ID})
			}
		}
		// Same column, next row: uy never reaches 2^32−1 (coordinates
		// are clamped to ±2^30 before biasing), so key+1 stays in the
		// column.
		if ci+1 < n && g.keys[ci+1] == g.keys[ci]+1 {
			cross(ci, ci+1)
		}
	}
	// Next column, rows −1..+1: for each direction the target keys are
	// strictly increasing with ci, so one merge walk finds all matches
	// without binary searches.
	for _, dy := range [3]uint64{^uint64(0), 0, 1} { // −1, 0, +1 in two's complement
		delta := uint64(1)<<32 + dy
		j := 0
		for ci := 0; ci < n; ci++ {
			target := g.keys[ci] + delta
			for j < n && g.keys[j] < target {
				j++
			}
			if j < n && g.keys[j] == target {
				cross(ci, j)
			}
		}
	}
	return out
}

// scanAll is the linear fallback: the predicate applied to every
// member, results sorted by ID.
func (g *Grid) scanAll(center geom.Vec2, rr float64, out []Member) []Member {
	for _, s := range g.slots {
		if s.m.Pos.DistSq(center) > rr {
			continue
		}
		out = append(out, s.m)
	}
	for _, m := range g.loose {
		if m.Pos.DistSq(center) > rr {
			continue
		}
		out = append(out, m)
	}
	slices.SortFunc(out, memberByID)
	return out
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSphereBetaOnSurface(t *testing.T) {
	o := SphereObstacle{C: V(10, 10), R: 2}
	x := V(16, 10) // 6 m east of center
	v := V(0, 3)   // moving tangentially
	ba := o.Beta(x, v)
	if !ba.OK {
		t.Fatal("projection should be defined")
	}
	// β-agent must lie on the sphere surface, on the segment C→x.
	if d := ba.Pos.Dist(o.C); math.Abs(d-o.R) > 1e-9 {
		t.Errorf("β-agent at distance %v from center, want R=%v", d, o.R)
	}
	want := V(12, 10)
	if !ba.Pos.ApproxEqual(want, 1e-9) {
		t.Errorf("β-agent at %v, want %v", ba.Pos, want)
	}
	// Velocity: tangential component scaled by μ = R/‖x−C‖ = 1/3.
	if !ba.Vel.ApproxEqual(V(0, 1), 1e-9) {
		t.Errorf("β-agent velocity %v, want (0,1)", ba.Vel)
	}
}

func TestSphereBetaRadialVelocityRemoved(t *testing.T) {
	o := SphereObstacle{C: Zero2, R: 1}
	x := V(4, 0)
	v := V(-2, 0) // heading straight at the obstacle
	ba := o.Beta(x, v)
	if !ba.OK {
		t.Fatal("projection should be defined")
	}
	if !ba.Vel.ApproxEqual(Zero2, 1e-12) {
		t.Errorf("radial velocity should vanish after projection, got %v", ba.Vel)
	}
}

func TestSphereBetaAtCenterUndefined(t *testing.T) {
	o := SphereObstacle{C: V(1, 1), R: 3}
	if ba := o.Beta(V(1, 1), V(1, 0)); ba.OK {
		t.Error("projection at center must be undefined")
	}
}

func TestSphereContains(t *testing.T) {
	o := SphereObstacle{C: Zero2, R: 2}
	if !o.Contains(V(1, 0)) {
		t.Error("interior point not contained")
	}
	if o.Contains(V(2, 0)) {
		t.Error("boundary point should not be 'strictly inside'")
	}
	if o.Contains(V(3, 3)) {
		t.Error("exterior point contained")
	}
}

// Property: sphere β-agent position is always on the surface, and its
// velocity is always tangential (orthogonal to the surface normal at
// the projection point).
func TestSphereBetaProperties(t *testing.T) {
	o := SphereObstacle{C: V(5, -3), R: 4}
	f := func(x, y, vx, vy float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(vx) || math.IsNaN(vy) {
			return true
		}
		if math.Abs(x) > 1e4 || math.Abs(y) > 1e4 || math.Abs(vx) > 1e4 || math.Abs(vy) > 1e4 {
			return true
		}
		p, v := V(x, y), V(vx, vy)
		if p == o.C {
			return true
		}
		ba := o.Beta(p, v)
		if !ba.OK {
			return false
		}
		onSurface := math.Abs(ba.Pos.Dist(o.C)-o.R) <= 1e-6*math.Max(1, p.Dist(o.C))
		normal := p.Sub(o.C).Unit()
		tangential := math.Abs(ba.Vel.Dot(normal)) <= 1e-6*math.Max(1, v.Norm())
		return onSurface && tangential
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWallBeta(t *testing.T) {
	// Vertical wall at x = 0, free side toward +x.
	w := NewWall(Zero2, V(1, 0))
	ba := w.Beta(V(5, 7), V(-2, 3))
	if !ba.OK {
		t.Fatal("wall projection should always be defined")
	}
	if !ba.Pos.ApproxEqual(V(0, 7), 1e-12) {
		t.Errorf("wall β-agent at %v, want (0,7)", ba.Pos)
	}
	if !ba.Vel.ApproxEqual(V(0, 3), 1e-12) {
		t.Errorf("wall β-agent velocity %v, want (0,3)", ba.Vel)
	}
}

func TestWallContains(t *testing.T) {
	w := NewWall(V(0, 0), V(0, 1)) // floor at y=0, free side up
	if !w.Contains(V(3, -1)) {
		t.Error("below-floor point not contained")
	}
	if w.Contains(V(3, 1)) {
		t.Error("above-floor point contained")
	}
}

func TestNewWallNormalizes(t *testing.T) {
	w := NewWall(Zero2, V(10, 0))
	if math.Abs(w.N.Norm()-1) > 1e-12 {
		t.Errorf("normal not normalized: %v", w.N)
	}
}

package faultinject

import (
	"errors"
	"strings"
	"testing"

	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// healthy returns a snapshot of a well-behaved protected robot whose
// covered-round count advances with time.
func healthy(id wire.RobotID, now wire.Tick) RobotSnapshot {
	return RobotSnapshot{
		ID:        id,
		Protected: true,
		Counters: radio.ByteCounters{
			TxApp: uint64(now) * 10, RxApp: uint64(now) * 20,
			TxFrames: uint64(now), RxFrames: uint64(now) * 2,
		},
		RoundsCovered: uint64(now / 16),
	}
}

func runTicks(c *Checker, upTo wire.Tick, snap func(id wire.RobotID, now wire.Tick) RobotSnapshot) *Violation {
	for now := wire.Tick(1); now <= upTo; now++ {
		snaps := []RobotSnapshot{snap(1, now), snap(2, now), snap(3, now)}
		if v := c.Check(now, snaps); v != nil {
			return v
		}
	}
	return nil
}

func TestCheckerCleanRun(t *testing.T) {
	c := NewChecker(40, 16, nil)
	if v := runTicks(c, 400, healthy); v != nil {
		t.Fatalf("clean run reported %v", v)
	}
}

func TestCheckerNoFalsePositive(t *testing.T) {
	sched := &Schedule{Faults: []Fault{{Kind: Partition, Start: 95, Duration: 10, Targets: []wire.RobotID{2}}}}
	c := NewChecker(40, 16, sched)
	v := runTicks(c, 200, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 2 && now >= 100 {
			s.InSafeMode = true
		}
		return s
	})
	if v == nil || v.Invariant != "no-false-positive" {
		t.Fatalf("got %v, want no-false-positive", v)
	}
	if v.Tick != 100 || v.Robot != 2 {
		t.Errorf("violation at tick %d robot %d, want 100/2", v.Tick, v.Robot)
	}
	if len(v.ActiveFaults) != 1 || !strings.Contains(v.ActiveFaults[0], "partition") {
		t.Errorf("missing fault context: %v", v.ActiveFaults)
	}
	if !strings.Contains(v.Error(), "tick 100") || !strings.Contains(v.Error(), "robot 2") {
		t.Errorf("Error() lacks context: %s", v.Error())
	}
}

func TestCheckerCompromisedMayEnterSafeMode(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 200, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 2 {
			s.Compromised = true
			s.Misbehaved = true
			s.MisbehavedAt = 80
			s.InSafeMode = now >= 100
		}
		return s
	})
	if v != nil {
		t.Fatalf("Safe-Moding an attacker reported %v", v)
	}
}

func TestCheckerBTIDeadline(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 300, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 3 {
			s.Compromised = true
			s.Misbehaved = true
			s.MisbehavedAt = 100
			// Never Safe-Modes: BTI must fire at 100+40+16+1.
		}
		return s
	})
	if v == nil || v.Invariant != "bti" {
		t.Fatalf("got %v, want bti", v)
	}
	if v.Tick != 157 || v.Robot != 3 {
		t.Errorf("bti fired at tick %d robot %d, want 157/3", v.Tick, v.Robot)
	}
}

func TestCheckerCrashSilentGetsBTIClock(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 300, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 1 {
			s.Compromised = true
			s.CrashFaulted = true
			s.Misbehaved = true
			s.MisbehavedAt = 100
		}
		return s
	})
	if v == nil || v.Invariant != "bti" || !strings.Contains(v.Detail, "crash-silent") {
		t.Fatalf("got %v, want crash-silent bti", v)
	}
}

func TestCheckerCounterMonotonicity(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 100, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 2 && now >= 50 {
			s.Counters.TxApp = 1 // went backwards
		}
		return s
	})
	if v == nil || v.Invariant != "conservation-radio" || v.Robot != 2 {
		t.Fatalf("got %v, want conservation-radio on robot 2", v)
	}
}

func TestCheckerGlobalConservation(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 100, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		// Receive far more than (n-1) x what anyone transmitted.
		s.Counters.RxApp = uint64(now) * 1000
		return s
	})
	if v == nil || v.Invariant != "conservation-radio" || v.Robot != wire.Broadcast {
		t.Fatalf("got %v, want global conservation-radio", v)
	}
}

func TestCheckerLogAccounting(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 100, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 1 && now >= 10 {
			s.LogAccounting = errors.New("entryBytes drifted")
		}
		return s
	})
	if v == nil || v.Invariant != "conservation-log" || v.Tick != 10 {
		t.Fatalf("got %v, want conservation-log at tick 10", v)
	}
}

func TestCheckerAuditLiveness(t *testing.T) {
	c := NewChecker(40, 16, nil)
	v := runTicks(c, 400, func(id wire.RobotID, now wire.Tick) RobotSnapshot {
		s := healthy(id, now)
		if id == 2 {
			s.RoundsCovered = 3 // stuck forever after round 3
		}
		return s
	})
	if v == nil || v.Invariant != "audit-liveness" || v.Robot != 2 {
		t.Fatalf("got %v, want audit-liveness on robot 2", v)
	}
}

func TestCheckerLivenessWaitsForQuietEnv(t *testing.T) {
	// A fault active until tick 300 defers the liveness deadline: at
	// tick 300+TVal+2*TAudit the clock has barely restarted.
	sched := &Schedule{Faults: []Fault{{Kind: LossBurst, Start: 60, Duration: 241, Rate: 0.9}}}
	c := NewChecker(40, 16, sched)
	var firstViolation wire.Tick
	for now := wire.Tick(1); now <= 500; now++ {
		s := healthy(2, now)
		s.RoundsCovered = 3
		if v := c.Check(now, []RobotSnapshot{s}); v != nil {
			firstViolation = v.Tick
			break
		}
	}
	if firstViolation == 0 {
		t.Fatal("liveness never fired")
	}
	// Env quiet from tick 300; deadline = 300 + TVal + 2*TAudit + 1.
	if want := wire.Tick(300 + 40 + 32 + 1); firstViolation != want {
		t.Errorf("liveness fired at %d, want %d (after the fault clears)", firstViolation, want)
	}
}

func TestCheckerLatchesFirstViolation(t *testing.T) {
	c := NewChecker(40, 16, nil)
	bad := RobotSnapshot{ID: 1, Protected: true, InSafeMode: true}
	v1 := c.Check(10, []RobotSnapshot{bad})
	worse := bad
	worse.LogAccounting = errors.New("also broken")
	v2 := c.Check(11, []RobotSnapshot{worse})
	if v1 == nil || v2 != v1 {
		t.Fatal("checker must latch the first violation")
	}
	if got := c.Violation(); got != v1 || got.Tick != 10 {
		t.Errorf("Violation() = %v", got)
	}
}

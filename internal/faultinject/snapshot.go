package faultinject

import (
	"errors"
	"sort"

	"roborebound/internal/obs"
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// Snapshot codec for the invariant checker. The checker's dynamic
// state is the latched violation and the three per-robot cursors the
// cross-tick invariants depend on: previous byte counters (monotony),
// last covered-round count, and the tick it last advanced (liveness).
// Timing parameters, the schedule, and the tracing/flight wiring are
// rebuild state. A resumed run must carry these cursors or the
// liveness deadline would silently restart at the snapshot tick.

// EncodeState serializes the checker as an opaque blob.
func (c *Checker) EncodeState() ([]byte, error) {
	w := wire.NewWriter(256)
	if c.violation != nil {
		w.U8(1)
		encodeViolation(w, c.violation)
	} else {
		w.U8(0)
	}

	ids := make([]wire.RobotID, 0, len(c.prev))
	for id := range c.prev {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		p := c.prev[id]
		w.U16(uint16(id))
		w.U64(p.TxApp)
		w.U64(p.TxAudit)
		w.U64(p.RxApp)
		w.U64(p.RxAudit)
		w.U64(p.TxFrames)
		w.U64(p.RxFrames)
		w.U64(p.Dropped)
	}

	ids = ids[:0]
	for id := range c.lastCov {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.U64(c.lastCov[id])
		w.U64(uint64(c.lastAdv[id]))
	}
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a rebuilt checker
// with the same timing parameters and schedule.
func (c *Checker) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	hasViol := r.U8()
	if r.Err() != nil {
		return r.Err()
	}
	if hasViol > 1 {
		return errors.New("faultinject: snapshot violation flag out of range")
	}
	var viol *Violation
	if hasViol == 1 {
		v, err := decodeViolation(r)
		if err != nil {
			return err
		}
		viol = v
	}

	nPrev := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nPrev > r.Remaining()/(2+7*8) {
		return errors.New("faultinject: snapshot counter cursor count exceeds payload")
	}
	prev := make(map[wire.RobotID]radio.ByteCounters, nPrev)
	last := -1
	for i := 0; i < nPrev; i++ {
		id := wire.RobotID(r.U16())
		p := radio.ByteCounters{
			TxApp: r.U64(), TxAudit: r.U64(),
			RxApp: r.U64(), RxAudit: r.U64(),
			TxFrames: r.U64(), RxFrames: r.U64(), Dropped: r.U64(),
		}
		if int(id) <= last {
			return errors.New("faultinject: snapshot counter cursors not in canonical order")
		}
		last = int(id)
		prev[id] = p
	}

	nCov := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nCov > r.Remaining()/(2+16) {
		return errors.New("faultinject: snapshot liveness cursor count exceeds payload")
	}
	lastCov := make(map[wire.RobotID]uint64, nCov)
	lastAdv := make(map[wire.RobotID]wire.Tick, nCov)
	last = -1
	for i := 0; i < nCov; i++ {
		id := wire.RobotID(r.U16())
		cov := r.U64()
		adv := wire.Tick(r.U64())
		if int(id) <= last {
			return errors.New("faultinject: snapshot liveness cursors not in canonical order")
		}
		last = int(id)
		lastCov[id] = cov
		lastAdv[id] = adv
	}
	if err := r.Done(); err != nil {
		return err
	}
	c.violation = viol
	c.prev = prev
	c.lastCov = lastCov
	c.lastAdv = lastAdv
	return nil
}

func encodeViolation(w *wire.Writer, v *Violation) {
	w.Blob([]byte(v.Invariant))
	w.U64(uint64(v.Tick))
	w.U16(uint16(v.Robot))
	w.Blob([]byte(v.Detail))
	w.U32(uint32(len(v.ActiveFaults)))
	for _, f := range v.ActiveFaults {
		w.Blob([]byte(f))
	}
	w.U32(uint32(len(v.Events)))
	for _, e := range v.Events {
		encodeEvent(w, e)
	}
}

func decodeViolation(r *wire.Reader) (*Violation, error) {
	v := &Violation{
		Invariant: string(r.Blob()),
		Tick:      wire.Tick(r.U64()),
		Robot:     wire.RobotID(r.U16()),
		Detail:    string(r.Blob()),
	}
	nFaults := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nFaults > r.Remaining()/4 {
		return nil, errors.New("faultinject: snapshot active-fault count exceeds payload")
	}
	for i := 0; i < nFaults; i++ {
		v.ActiveFaults = append(v.ActiveFaults, string(r.Blob()))
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	nEvents := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each event record is at least 25 bytes.
	if nEvents > r.Remaining()/25 {
		return nil, errors.New("faultinject: snapshot event count exceeds payload")
	}
	for i := 0; i < nEvents; i++ {
		e, err := decodeEvent(r)
		if err != nil {
			return nil, err
		}
		v.Events = append(v.Events, e)
	}
	return v, r.Err()
}

func encodeEvent(w *wire.Writer, e obs.Event) {
	w.U64(uint64(e.Tick))
	w.U16(uint16(e.Robot))
	w.U8(uint8(e.Kind))
	w.U16(uint16(e.Peer))
	w.U8(uint8(e.Cause))
	w.U64(uint64(e.Value))
	w.Blob([]byte(e.Detail))
}

func decodeEvent(r *wire.Reader) (obs.Event, error) {
	e := obs.Event{
		Tick:  wire.Tick(r.U64()),
		Robot: wire.RobotID(r.U16()),
		Kind:  obs.EventKind(r.U8()),
		Peer:  wire.RobotID(r.U16()),
		Cause: obs.DropCause(r.U8()),
		Value: int64(r.U64()),
	}
	e.Detail = string(r.Blob())
	return e, r.Err()
}

// Package faultinject is a deterministic, schedule-driven
// fault-injection layer for chaos-testing the RoboRebound defense.
//
// A Schedule is a list of (start tick, duration, targets, params)
// fault entries derived purely from (profile, seed), so every chaotic
// run is bit-reproducible and replayable. Faults compose: a loss
// burst can overlap a partition which can overlap an attacker's
// misbehavior window — exactly the regime where audit protocols are
// most fragile (§3.6–§3.10 of the paper condition BTI on surviving
// it).
//
// The schedule plugs into the rest of the system through narrow
// hooks, none of which know about fault injection:
//
//   - radio.LossModel / radio.LinkFilter / radio.TxDelay on the
//     medium (loss bursts, per-link loss, partitions,
//     withheld/delayed audit responses);
//   - robot.Config.TrustedClock (per-robot clock skew and drift on
//     the trusted pair's timers);
//   - the attack package's Silent strategy (crash-silent robots —
//     the facade wires Crash faults as attack.Silent compromises).
//
// The companion Checker (invariants.go) watches every tick and
// reports the first violated paper guarantee with tick, robot, and
// fault context.
package faultinject

import (
	"fmt"
	"sort"
	"strings"

	"roborebound/internal/prng"
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// Kind enumerates the environmental fault types.
type Kind uint8

const (
	// LossBurst raises the uniform loss rate for every link during
	// the window (Rate; targets ignored).
	LossBurst Kind = iota + 1
	// LinkLoss adds loss rate Rate on links touching any target
	// robot during the window.
	LinkLoss
	// Partition blocks every frame crossing the boundary between the
	// target set and the rest of the swarm during the window.
	Partition
	// ClockSkew offsets the targets' trusted-hardware clocks by
	// OffsetTicks (+ DriftPer1024 per 1024 elapsed ticks) during the
	// window. The engine clock — and hence physics, delivery, and
	// Safe-Mode bookkeeping — is unaffected.
	ClockSkew
	// Crash makes the targets crash-silent from Start onward:
	// they stop transmitting and responding entirely (the facade
	// implements this by compromising them with attack.Silent).
	// Duration is ignored; a crash is permanent.
	Crash
	// WithholdAudit blocks audit/token responses transmitted by the
	// targets during the window (the "withheld token responses"
	// griefing fault).
	WithholdAudit
	// DelayAudit delays audit/token responses transmitted by the
	// targets by DelayTicks delivery rounds during the window.
	DelayAudit
)

// String returns the kind's schedule-format name.
func (k Kind) String() string {
	switch k {
	case LossBurst:
		return "loss-burst"
	case LinkLoss:
		return "link-loss"
	case Partition:
		return "partition"
	case ClockSkew:
		return "clock-skew"
	case Crash:
		return "crash"
	case WithholdAudit:
		return "withhold-audit"
	case DelayAudit:
		return "delay-audit"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one schedule entry: a kind, a [Start, Start+Duration)
// activity window, the targeted robots (meaning depends on Kind; nil
// = swarm-wide where that makes sense), and kind-specific params.
type Fault struct {
	Kind     Kind
	Start    wire.Tick
	Duration wire.Tick
	Targets  []wire.RobotID

	// Rate is the loss probability for LossBurst / LinkLoss.
	Rate float64
	// OffsetTicks is the constant clock offset for ClockSkew
	// (negative = the robot's trusted clock runs behind).
	OffsetTicks int64
	// DriftPer1024 adds OffsetTicks drift: DriftPer1024 extra ticks
	// of skew accumulate per 1024 elapsed window ticks (integer
	// math, so bit-exact across platforms).
	DriftPer1024 int64
	// DelayTicks is the per-frame hold for DelayAudit.
	DelayTicks wire.Tick
}

// ActiveAt reports whether the fault's window covers tick now.
// Crash faults are active from Start forever.
func (f *Fault) ActiveAt(now wire.Tick) bool {
	if now < f.Start {
		return false
	}
	if f.Kind == Crash {
		return true
	}
	return now < f.Start+f.Duration
}

// TargetsRobot reports whether id is targeted (nil target list = all).
func (f *Fault) TargetsRobot(id wire.RobotID) bool {
	if len(f.Targets) == 0 {
		return true
	}
	for _, t := range f.Targets {
		if t == id {
			return true
		}
	}
	return false
}

// String renders one entry of the schedule format documented in
// DESIGN.md: kind@[start,end) targets{...} params.
func (f *Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@[%d,%d)", f.Kind, f.Start, f.Start+f.Duration)
	if len(f.Targets) > 0 {
		ids := make([]string, len(f.Targets))
		for i, t := range f.Targets {
			ids[i] = fmt.Sprintf("%d", t)
		}
		fmt.Fprintf(&b, " targets{%s}", strings.Join(ids, ","))
	}
	switch f.Kind {
	case LossBurst, LinkLoss:
		fmt.Fprintf(&b, " rate=%.2f", f.Rate)
	case ClockSkew:
		fmt.Fprintf(&b, " offset=%+d drift=%+d/1024", f.OffsetTicks, f.DriftPer1024)
	case DelayAudit:
		fmt.Fprintf(&b, " delay=%d", f.DelayTicks)
	}
	return b.String()
}

// Schedule is an ordered set of fault entries plus the base loss rate
// the medium would have without any faults.
type Schedule struct {
	Faults   []Fault
	BaseLoss float64
}

// ActiveAt returns the indices of faults active at tick now.
func (s *Schedule) ActiveAt(now wire.Tick) []int {
	var out []int
	for i := range s.Faults {
		if s.Faults[i].ActiveAt(now) {
			out = append(out, i)
		}
	}
	return out
}

// Describe renders the faults active at now, for violation reports.
func (s *Schedule) Describe(now wire.Tick) []string {
	var out []string
	for i := range s.Faults {
		if s.Faults[i].ActiveAt(now) {
			out = append(out, s.Faults[i].String())
		}
	}
	return out
}

// Strings renders every entry, in schedule order.
func (s *Schedule) Strings() []string {
	out := make([]string, len(s.Faults))
	for i := range s.Faults {
		out[i] = s.Faults[i].String()
	}
	return out
}

// CrashTargets returns the robots any Crash fault makes crash-silent,
// with the tick each goes dark, sorted by id.
func (s *Schedule) CrashTargets() map[wire.RobotID]wire.Tick {
	out := make(map[wire.RobotID]wire.Tick)
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind != Crash {
			continue
		}
		for _, id := range f.Targets {
			at, seen := out[id]
			if !seen || f.Start < at {
				out[id] = f.Start
			}
		}
	}
	return out
}

// EnvDisturbedAt reports the latest tick ≤ now at which any
// connectivity-affecting fault (everything except ClockSkew) was
// active, and whether one ever was. The invariant checker uses it to
// start liveness timers only after the environment calms down.
func (s *Schedule) EnvDisturbedAt(now wire.Tick) (wire.Tick, bool) {
	var latest wire.Tick
	found := false
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind == ClockSkew || f.Start > now {
			continue
		}
		end := now
		if f.Kind != Crash && f.Start+f.Duration-1 < now {
			end = f.Start + f.Duration - 1
		}
		if !found || end > latest {
			latest = end
		}
		found = true
	}
	return latest, found
}

// --- Medium adapters -------------------------------------------------
//
// Each adapter closes over a clock reporting the engine's current
// tick, so fault windows align exactly with engine time (the medium's
// own delivery counter can lag on idle rounds).

// LossModel builds the radio loss model for this schedule: the base
// rate plus any active LossBurst/LinkLoss contributions, capped at 1.
// Returns nil when the schedule has no loss faults and no base rate
// (leave the medium's default in place).
func (s *Schedule) LossModel(clock func() wire.Tick) radio.LossModel {
	any := s.BaseLoss > 0
	for i := range s.Faults {
		if s.Faults[i].Kind == LossBurst || s.Faults[i].Kind == LinkLoss {
			any = true
		}
	}
	if !any {
		return nil
	}
	return &scheduleLoss{s: s, clock: clock}
}

type scheduleLoss struct {
	s     *Schedule
	clock func() wire.Tick
}

// Drop implements radio.LossModel. Overlapping faults compose by
// independent-survival: P(drop) = 1 − ∏(1 − rateᵢ), evaluated with a
// single draw so the RNG stream stays one-draw-per-candidate. The
// drop region is the low tail (draw < P), matching radio.UniformLoss,
// so a schedule with no active loss fault reproduces the base-rate
// byte stream of an unfaulted run exactly.
func (l *scheduleLoss) Drop(from, to wire.RobotID, draw float64) bool {
	now := l.clock()
	keep := 1 - l.s.BaseLoss
	for i := range l.s.Faults {
		f := &l.s.Faults[i]
		if !f.ActiveAt(now) {
			continue
		}
		switch f.Kind {
		case LossBurst:
			keep *= 1 - f.Rate
		case LinkLoss:
			if f.TargetsRobot(from) || f.TargetsRobot(to) {
				keep *= 1 - f.Rate
			}
		}
	}
	return draw < 1-keep
}

// isAuditResponse reports whether f carries an (unfragmented)
// audit/token response. Fragments hide the payload kind; chaos runs
// use MTUBytes=0, so this is exact there.
func isAuditResponse(f wire.Frame) bool {
	return f.IsAudit() && f.Flags&wire.FlagFragment == 0 &&
		wire.PayloadKind(f.Payload) == wire.KindAuditResponse
}

// LinkFilter builds the radio link filter implementing Partition and
// WithholdAudit faults. Returns nil when the schedule has neither.
func (s *Schedule) LinkFilter(clock func() wire.Tick) radio.LinkFilter {
	any := false
	for i := range s.Faults {
		if s.Faults[i].Kind == Partition || s.Faults[i].Kind == WithholdAudit {
			any = true
		}
	}
	if !any {
		return nil
	}
	return func(from, to wire.RobotID, f wire.Frame) bool {
		now := clock()
		for i := range s.Faults {
			fl := &s.Faults[i]
			if !fl.ActiveAt(now) {
				continue
			}
			switch fl.Kind {
			case Partition:
				if fl.TargetsRobot(from) != fl.TargetsRobot(to) {
					return true
				}
			case WithholdAudit:
				if fl.TargetsRobot(from) && isAuditResponse(f) {
					return true
				}
			}
		}
		return false
	}
}

// TxDelay builds the radio transmit-delay hook implementing
// DelayAudit faults. Returns nil when the schedule has none.
func (s *Schedule) TxDelay(clock func() wire.Tick) radio.TxDelay {
	any := false
	for i := range s.Faults {
		if s.Faults[i].Kind == DelayAudit {
			any = true
		}
	}
	if !any {
		return nil
	}
	return func(from wire.RobotID, f wire.Frame) wire.Tick {
		now := clock()
		var d wire.Tick
		for i := range s.Faults {
			fl := &s.Faults[i]
			if fl.Kind == DelayAudit && fl.ActiveAt(now) && fl.TargetsRobot(from) && isAuditResponse(f) {
				if fl.DelayTicks > d {
					d = fl.DelayTicks
				}
			}
		}
		return d
	}
}

// Clock builds the skewed trusted-hardware clock for robot id, or nil
// when no ClockSkew fault ever targets id (use the engine clock
// directly). The returned clock clamps at 0 — wire.Tick is unsigned
// and a skewed clock before mission start reads as "still tick 0".
func (s *Schedule) Clock(id wire.RobotID, base func() wire.Tick) func() wire.Tick {
	var mine []int
	for i := range s.Faults {
		if s.Faults[i].Kind == ClockSkew && s.Faults[i].TargetsRobot(id) {
			mine = append(mine, i)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	return func() wire.Tick {
		now := base()
		off := int64(0)
		for _, i := range mine {
			f := &s.Faults[i]
			if !f.ActiveAt(now) {
				continue
			}
			off += f.OffsetTicks + f.DriftPer1024*int64(now-f.Start)/1024
		}
		skewed := int64(now) + off
		if skewed < 0 {
			return 0
		}
		return wire.Tick(skewed)
	}
}

// --- Deterministic generation ----------------------------------------

// Profile names a fault-mix recipe for Generate.
type Profile string

const (
	// ProfileNone injects nothing — the control cell of the matrix.
	ProfileNone Profile = "none"
	// ProfileLoss injects repeated swarm-wide loss bursts.
	ProfileLoss Profile = "loss"
	// ProfilePartition injects short partitions isolating a small group.
	ProfilePartition Profile = "partition"
	// ProfileSkew injects clock skew/drift on a couple of robots.
	ProfileSkew Profile = "skew"
	// ProfileCrash crashes one robot mid-run.
	ProfileCrash Profile = "crash"
	// ProfileGrief withholds and delays audit responses.
	ProfileGrief Profile = "grief"
	// ProfileMixed samples a little of everything.
	ProfileMixed Profile = "mixed"
)

// Profiles lists every generated profile, in display order.
func Profiles() []Profile {
	return []Profile{ProfileNone, ProfileLoss, ProfilePartition, ProfileSkew,
		ProfileCrash, ProfileGrief, ProfileMixed}
}

// Limits carries the protocol timing bounds Generate must respect so
// every generated schedule is survivable by construction: correct
// robots must be able to keep f_max+1 tokens fresh through any
// generated fault (tokens live TVal; rounds recur every TAudit).
type Limits struct {
	TVal   wire.Tick
	TAudit wire.Tick
	// Avoid lists robots Generate must not target with Crash,
	// ClockSkew, or WithholdAudit faults — the facade passes the
	// deliberate attackers here so fault attribution stays clean.
	Avoid []wire.RobotID
}

func (l Limits) avoid(id wire.RobotID) bool {
	for _, a := range l.Avoid {
		if a == id {
			return true
		}
	}
	return false
}

// pickTargets draws n distinct non-avoided robots, sorted ascending.
func pickTargets(rng *prng.Source, ids []wire.RobotID, lim Limits, n int) []wire.RobotID {
	pool := make([]wire.RobotID, 0, len(ids))
	for _, id := range ids {
		if !lim.avoid(id) {
			pool = append(pool, id)
		}
	}
	if n > len(pool) {
		n = len(pool)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := append([]wire.RobotID(nil), pool[:n]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generate derives a fault schedule purely from (profile, seed) for a
// mission over ids lasting total ticks. Identical inputs produce an
// identical schedule, bit for bit. Window lengths and rates are
// bounded by lim so correct robots survive: partitions and bursts
// stay well under TVal, positive clock skew stays under TAudit/2, and
// per-link loss stays ≤ 0.25 over at most 3/4 TVal.
func Generate(profile Profile, seed uint64, ids []wire.RobotID, total wire.Tick, lim Limits) Schedule {
	rng := prng.New(seed ^ 0xFA017)
	var s Schedule
	if lim.TVal == 0 {
		lim.TVal = 40
	}
	if lim.TAudit == 0 {
		lim.TAudit = 16
	}
	// Faults start after the a-node grace window (first TVal) plus one
	// audit round, and end before the run does, so every window is
	// followed by quiet time in which the checker can observe recovery.
	lo := lim.TVal + lim.TAudit
	// Guard against unsigned underflow before subtracting: a run
	// shorter than the grace windows generates no faults at all.
	if total <= lo+lim.TVal {
		return s
	}
	hi := total - lim.TVal
	window := func(maxLen wire.Tick) (wire.Tick, wire.Tick) {
		minLen := lim.TAudit / 2
		if maxLen <= minLen {
			maxLen = minLen + 1
		}
		start := lo + wire.Tick(rng.Intn(int(hi-lo)))
		length := minLen + wire.Tick(rng.Intn(int(maxLen-minLen)))
		if start+length > hi {
			length = hi - start
		}
		return start, length
	}

	lossBursts := func(n int) {
		for i := 0; i < n; i++ {
			start, length := window(lim.TVal / 3)
			s.Faults = append(s.Faults, Fault{
				Kind: LossBurst, Start: start, Duration: length,
				Rate: rng.Range(0.30, 0.55),
			})
		}
	}
	// linkLoss impairs one or two robots' links. Rate and duration
	// are bounded together: a token installed just before the window
	// expires TVal ticks later, so a targeted window approaching TVal
	// at the top of the rate range can starve a correct robot of its
	// f_max+1 fresh tokens. Capping the window at 3/4 TVal keeps at
	// least one audit round of freshness margin after it lifts.
	linkLoss := func() {
		start, length := window(3 * lim.TVal / 4)
		s.Faults = append(s.Faults, Fault{
			Kind: LinkLoss, Start: start, Duration: length,
			Targets: pickTargets(rng, ids, lim, 1+rng.Intn(2)),
			Rate:    rng.Range(0.15, 0.25),
		})
	}
	partition := func() {
		start, length := window(lim.TVal / 4)
		s.Faults = append(s.Faults, Fault{
			Kind: Partition, Start: start, Duration: length,
			Targets: pickTargets(rng, ids, lim, 1+rng.Intn(max(1, len(ids)/4))),
		})
	}
	skew := func() {
		start, length := window(2 * lim.TVal)
		// A skew window steps the robot's local clock by |offset| at
		// one edge (forward at the start for positive skew, forward at
		// the end for negative), instantly aging every installed token
		// by that much. Survivable as long as |offset| stays within
		// the TVal − TAudit freshness margin; cap positive offsets at
		// TAudit/2 and negative ones at TAudit.
		off := 1 + int64(rng.Intn(int(max(1, int(lim.TAudit/2)))))
		if rng.Intn(2) == 0 {
			off = -2 * off
		}
		s.Faults = append(s.Faults, Fault{
			Kind: ClockSkew, Start: start, Duration: length,
			Targets:      pickTargets(rng, ids, lim, 1+rng.Intn(2)),
			OffsetTicks:  off,
			DriftPer1024: int64(rng.Intn(33) - 16),
		})
	}
	crash := func() {
		span := int(hi-lo) / 3
		start := lo + wire.Tick(span+rng.Intn(max(1, span)))
		s.Faults = append(s.Faults, Fault{
			Kind: Crash, Start: start,
			Targets: pickTargets(rng, ids, lim, 1),
		})
	}
	// grief withholds one robot's audit responses and delays up to
	// maxDelayed more. The caller bounds maxDelayed by the quorum
	// margin: every auditee must keep f_max+1 reachable auditors, so
	// profiles that also impair auditors through other faults (mixed)
	// must grieve fewer of them.
	grief := func(maxDelayed int) {
		start, length := window(lim.TVal)
		s.Faults = append(s.Faults, Fault{
			Kind: WithholdAudit, Start: start, Duration: length,
			Targets: pickTargets(rng, ids, lim, 1),
		})
		start, length = window(2 * lim.TVal)
		s.Faults = append(s.Faults, Fault{
			Kind: DelayAudit, Start: start, Duration: length,
			Targets:    pickTargets(rng, ids, lim, 1+rng.Intn(maxDelayed)),
			DelayTicks: wire.Tick(2 + rng.Intn(5)),
		})
	}

	switch profile {
	case ProfileNone:
	case ProfileLoss:
		lossBursts(2 + rng.Intn(2))
		linkLoss()
	case ProfilePartition:
		partition()
		partition()
	case ProfileSkew:
		skew()
		skew()
	case ProfileCrash:
		crash()
	case ProfileGrief:
		grief(2)
	case ProfileMixed:
		lossBursts(1)
		partition()
		skew()
		grief(1)
	default:
		// Unknown profiles generate nothing rather than guessing.
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].Start < s.Faults[j].Start })
	return s
}

package faultinject

import (
	"fmt"

	"roborebound/internal/obs"
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// RobotSnapshot is one robot's observable state at one tick, as the
// facade samples it from the simulation. It is plain data so the
// checker stays decoupled from the robot/attack packages.
type RobotSnapshot struct {
	ID        wire.RobotID
	Protected bool
	// Compromised marks deliberate attackers AND crash-faulted robots
	// (both are wrapped by the attack package); CrashFaulted
	// distinguishes the latter for reporting.
	Compromised  bool
	CrashFaulted bool
	// Misbehaved / MisbehavedAt come from the attack wrapper's
	// FirstMisbehaviorAt — the instant the BTI clock starts.
	Misbehaved   bool
	MisbehavedAt wire.Tick
	InSafeMode   bool
	// PhysCrashed marks robots disabled by a physical collision; their
	// tokens legitimately expire, so Safe-Moding them is not a false
	// positive.
	PhysCrashed bool
	Counters    radio.ByteCounters
	// RoundsCovered is the protocol engine's count of token-covered
	// audit rounds (0 for unprotected robots).
	RoundsCovered uint64
	// LogAccounting is the c-node log's self-check
	// (auditlog.Log.AccountingError); nil when consistent or when the
	// robot has no protocol engine.
	LogAccounting error
}

// Violation reports the first invariant breach a Checker observed,
// with enough context to reproduce it: which invariant, when, which
// robot, and which faults were active at that tick.
type Violation struct {
	Invariant string // "no-false-positive" | "bti" | "conservation-radio" | "conservation-log" | "audit-liveness"
	Tick      wire.Tick
	Robot     wire.RobotID
	Detail    string
	// ActiveFaults renders the schedule entries active at Tick.
	ActiveFaults []string
	// Events is the offending robot's flight-recorder dump (its last N
	// protocol + frame events), captured at latch time when the checker
	// has a recorder attached. Empty for system-wide violations
	// (Robot == wire.Broadcast) or when flight recording is off.
	Events []obs.Event
}

// Error formats the violation as a single line, followed by the
// flight-recorder dump when one was captured — a chaos failure is a
// self-contained forensic report.
func (v *Violation) Error() string {
	s := fmt.Sprintf("invariant %s violated at tick %d robot %d: %s", v.Invariant, v.Tick, v.Robot, v.Detail)
	if len(v.ActiveFaults) > 0 {
		s += fmt.Sprintf(" (active faults: %v)", v.ActiveFaults)
	}
	if len(v.Events) > 0 {
		s += fmt.Sprintf("\nflight recorder (last %d events of robot %d):", len(v.Events), v.Robot)
		for _, e := range v.Events {
			s += "\n  " + e.String()
		}
	}
	return s
}

// Checker asserts the paper's guarantees every tick:
//
//  1. no false positives — correct robots are never Safe-Moded
//     (§3.10 "correct robots are never disabled");
//  2. BTI — every misbehaving robot is Safe-Moded within
//     TVal + TAudit of its first misbehavior (T_val for token expiry
//     plus one audit round of granularity, the bound §3.10 proves);
//  3. replay-equivalence, observed through audit liveness — correct
//     robots keep getting their rounds token-covered, which requires
//     every correct auditor's replay of their log to keep succeeding;
//
// plus two conservation checks that keep the simulation itself
// honest: radio byte accounting (per-robot counters are monotone and
// globally conserved — nothing is received that was never sent) and
// log accounting (retained-log growth matches the sum of entry
// sizes).
//
// The first breach is latched as a Violation with tick, robot, and
// fault context; later ticks are still checked (cheaply) but cannot
// overwrite it.
type Checker struct {
	TVal   wire.Tick //rebound:snapshot-skip harness config, fixed at construction
	TAudit wire.Tick //rebound:snapshot-skip harness config, fixed at construction
	// Schedule provides fault context for reports and the
	// environment-quiet timer for the liveness check; optional.
	Schedule *Schedule //rebound:snapshot-skip harness config, fixed at construction
	// Flight, when non-nil, is dumped into the Violation at latch
	// time: the offending robot's retained event history rides along
	// with the report. Optional.
	Flight *obs.FlightRecorder //rebound:snapshot-skip observer wiring, reattached at rebuild
	// Trace, when non-nil, receives an EvInvariantViolation event at
	// latch time (so exported event logs mark the breach in-stream).
	// Optional.
	Trace obs.Tracer //rebound:snapshot-skip observer wiring, reattached at rebuild

	violation *Violation
	prev      map[wire.RobotID]radio.ByteCounters
	lastCov   map[wire.RobotID]uint64
	lastAdv   map[wire.RobotID]wire.Tick
}

// NewChecker builds a checker for a run with the given protocol
// timing.
func NewChecker(tval, taudit wire.Tick, sched *Schedule) *Checker {
	return &Checker{
		TVal: tval, TAudit: taudit, Schedule: sched,
		prev:    make(map[wire.RobotID]radio.ByteCounters),
		lastCov: make(map[wire.RobotID]uint64),
		lastAdv: make(map[wire.RobotID]wire.Tick),
	}
}

// Violation returns the first latched breach, or nil.
func (c *Checker) Violation() *Violation { return c.violation }

func (c *Checker) report(inv string, now wire.Tick, id wire.RobotID, format string, args ...any) {
	if c.violation != nil {
		return
	}
	v := &Violation{Invariant: inv, Tick: now, Robot: id, Detail: fmt.Sprintf(format, args...)}
	if c.Schedule != nil {
		v.ActiveFaults = c.Schedule.Describe(now)
	}
	if c.Flight != nil && id != wire.Broadcast {
		v.Events = c.Flight.Events(id)
	}
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Tick: now, Robot: id,
			Kind: obs.EvInvariantViolation, Detail: inv + ": " + v.Detail})
	}
	c.violation = v
}

// btiDeadline returns the last tick by which a robot misbehaving at t
// must be in Safe Mode.
func (c *Checker) btiDeadline(t wire.Tick) wire.Tick { return t + c.TVal + c.TAudit }

// Check runs every invariant against this tick's snapshots. It
// returns the latched violation (possibly from an earlier tick), or
// nil while all invariants hold.
func (c *Checker) Check(now wire.Tick, snaps []RobotSnapshot) *Violation {
	var txBytes, rxBytes, txFrames, rxFrames uint64
	n := uint64(len(snaps))

	for i := range snaps {
		s := &snaps[i]

		// 1. No false positives.
		if s.InSafeMode && !s.Compromised && !s.PhysCrashed {
			c.report("no-false-positive", now, s.ID,
				"correct robot entered Safe Mode")
		}

		// 2. Bounded-time interaction.
		if s.Misbehaved && !s.InSafeMode && now > c.btiDeadline(s.MisbehavedAt) {
			what := "misbehaving"
			if s.CrashFaulted {
				what = "crash-silent"
			}
			c.report("bti", now, s.ID,
				"%s robot (first misbehavior at tick %d) not Safe-Moded by deadline %d",
				what, s.MisbehavedAt, c.btiDeadline(s.MisbehavedAt))
		}

		// 3a. Radio conservation: per-robot counters are monotone.
		if p, ok := c.prev[s.ID]; ok {
			cur := s.Counters
			if cur.TxApp < p.TxApp || cur.TxAudit < p.TxAudit ||
				cur.RxApp < p.RxApp || cur.RxAudit < p.RxAudit ||
				cur.TxFrames < p.TxFrames || cur.RxFrames < p.RxFrames ||
				cur.Dropped < p.Dropped {
				c.report("conservation-radio", now, s.ID,
					"byte counters went backwards: %+v -> %+v", p, cur)
			}
		}
		c.prev[s.ID] = s.Counters
		txBytes += s.Counters.TxApp + s.Counters.TxAudit
		rxBytes += s.Counters.RxApp + s.Counters.RxAudit
		txFrames += s.Counters.TxFrames
		rxFrames += s.Counters.RxFrames

		// 3b. Log conservation.
		if s.LogAccounting != nil {
			c.report("conservation-log", now, s.ID, "%v", s.LogAccounting)
		}

		// 4. Audit liveness (replay equivalence made observable): a
		// correct protected robot's covered-round count must keep
		// advancing — every correct auditor must keep reproducing its
		// log — once the environment has been quiet long enough.
		if s.Protected && !s.Compromised && !s.PhysCrashed && !s.InSafeMode {
			last, seen := c.lastCov[s.ID]
			if !seen || s.RoundsCovered > last {
				c.lastCov[s.ID] = s.RoundsCovered
				c.lastAdv[s.ID] = now
			} else {
				quietSince := c.lastAdv[s.ID]
				if c.Schedule != nil {
					if t, ok := c.Schedule.EnvDisturbedAt(now); ok && t > quietSince {
						quietSince = t
					}
				}
				// Grace: the first covered round takes one full TVal
				// (a-node grace) plus audit latency from boot.
				if g := c.TVal + c.TAudit; g > quietSince {
					quietSince = g
				}
				if now > quietSince+c.TVal+2*c.TAudit {
					c.report("audit-liveness", now, s.ID,
						"covered rounds stuck at %d since tick %d (env quiet since %d)",
						s.RoundsCovered, c.lastAdv[s.ID], quietSince)
				}
			}
		}
	}

	// 3c. Radio conservation, global: a frame transmitted once is
	// received at most n-1 times, and only decoded-and-kept bytes are
	// counted, so ΣRx ≤ ΣTx·(n−1).
	if n > 1 {
		if rxBytes > txBytes*(n-1) {
			c.report("conservation-radio", now, wire.Broadcast,
				"global Rx bytes %d exceed Tx %d x (n-1)", rxBytes, txBytes)
		}
		if rxFrames > txFrames*(n-1) {
			c.report("conservation-radio", now, wire.Broadcast,
				"global Rx frames %d exceed Tx %d x (n-1)", rxFrames, txFrames)
		}
	}

	return c.violation
}

package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"roborebound/internal/wire"
)

func allIDs(n int) []wire.RobotID {
	ids := make([]wire.RobotID, n)
	for i := range ids {
		ids[i] = wire.RobotID(i + 1)
	}
	return ids
}

func TestGenerateDeterministic(t *testing.T) {
	lim := Limits{TVal: 40, TAudit: 16}
	for _, p := range Profiles() {
		a := Generate(p, 7, allIDs(9), 240, lim)
		b := Generate(p, 7, allIDs(9), 240, lim)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same (profile, seed) produced different schedules", p)
		}
		c := Generate(p, 8, allIDs(9), 240, lim)
		if p != ProfileNone && reflect.DeepEqual(a.Faults, c.Faults) {
			t.Errorf("%s: different seeds produced identical schedules", p)
		}
	}
}

func TestGenerateRespectsWindowsAndAvoid(t *testing.T) {
	lim := Limits{TVal: 40, TAudit: 16, Avoid: []wire.RobotID{3}}
	lo, hi := wire.Tick(56), wire.Tick(200)
	for _, p := range Profiles() {
		for seed := uint64(1); seed <= 20; seed++ {
			s := Generate(p, seed, allIDs(9), 240, lim)
			for _, f := range s.Faults {
				if f.Start < lo {
					t.Fatalf("%s seed=%d: %s starts before the grace window (%d)", p, seed, &f, lo)
				}
				if f.Kind != Crash && f.Start+f.Duration > hi {
					t.Fatalf("%s seed=%d: %s overruns the cooldown window (%d)", p, seed, &f, hi)
				}
				for _, id := range f.Targets {
					if id == 3 {
						t.Fatalf("%s seed=%d: %s targets avoided robot 3", p, seed, &f)
					}
				}
			}
		}
	}
}

func TestGenerateProfileShapes(t *testing.T) {
	lim := Limits{TVal: 40, TAudit: 16}
	if n := len(Generate(ProfileNone, 1, allIDs(6), 240, lim).Faults); n != 0 {
		t.Errorf("none profile generated %d faults", n)
	}
	kinds := func(s Schedule) map[Kind]int {
		m := make(map[Kind]int)
		for _, f := range s.Faults {
			m[f.Kind]++
		}
		return m
	}
	k := kinds(Generate(ProfileMixed, 3, allIDs(9), 240, lim))
	for _, want := range []Kind{LossBurst, Partition, ClockSkew, WithholdAudit, DelayAudit} {
		if k[want] == 0 {
			t.Errorf("mixed profile missing %s fault", want)
		}
	}
	if k := kinds(Generate(ProfileCrash, 3, allIDs(9), 240, lim)); k[Crash] != 1 {
		t.Errorf("crash profile generated %d crashes, want 1", k[Crash])
	}
}

func TestFaultActiveAtAndString(t *testing.T) {
	f := Fault{Kind: Partition, Start: 100, Duration: 10, Targets: []wire.RobotID{2, 5}}
	for _, tc := range []struct {
		now    wire.Tick
		active bool
	}{{99, false}, {100, true}, {109, true}, {110, false}} {
		if got := f.ActiveAt(tc.now); got != tc.active {
			t.Errorf("ActiveAt(%d) = %v, want %v", tc.now, got, tc.active)
		}
	}
	crash := Fault{Kind: Crash, Start: 50, Targets: []wire.RobotID{1}}
	if !crash.ActiveAt(5000) {
		t.Error("crash fault should be active forever after Start")
	}
	if got := f.String(); got != "partition@[100,110) targets{2,5}" {
		t.Errorf("String() = %q", got)
	}
	if !f.TargetsRobot(2) || f.TargetsRobot(3) {
		t.Error("TargetsRobot wrong for explicit target list")
	}
	if !(&Fault{Kind: LossBurst}).TargetsRobot(7) {
		t.Error("empty target list must mean everyone")
	}
}

func TestLossModelComposes(t *testing.T) {
	now := wire.Tick(0)
	s := &Schedule{
		BaseLoss: 0.1,
		Faults: []Fault{
			{Kind: LossBurst, Start: 10, Duration: 10, Rate: 0.5},
			{Kind: LinkLoss, Start: 10, Duration: 10, Rate: 0.5, Targets: []wire.RobotID{2}},
		},
	}
	lm := s.LossModel(func() wire.Tick { return now })
	if lm == nil {
		t.Fatal("schedule with loss faults returned nil LossModel")
	}
	// Outside the window only the base rate applies (drop iff
	// draw < P, the same tail as radio.UniformLoss).
	if !lm.Drop(1, 3, 0.05) || lm.Drop(1, 3, 0.15) {
		t.Error("base rate not applied outside fault windows")
	}
	now = 10
	// Burst only on a link not touching robot 2: P = 1-0.9*0.5 = 0.55.
	if !lm.Drop(1, 3, 0.54) || lm.Drop(1, 3, 0.56) {
		t.Error("burst composition wrong on untargeted link")
	}
	// Burst + link loss on a link touching robot 2: P = 1-0.9*0.25 = 0.775.
	if !lm.Drop(1, 2, 0.77) || lm.Drop(1, 2, 0.78) {
		t.Error("burst+link composition wrong on targeted link")
	}
	if (&Schedule{}).LossModel(func() wire.Tick { return 0 }) != nil {
		t.Error("empty schedule must return nil LossModel")
	}
}

func TestLinkFilterPartition(t *testing.T) {
	now := wire.Tick(20)
	s := &Schedule{Faults: []Fault{
		{Kind: Partition, Start: 10, Duration: 20, Targets: []wire.RobotID{1, 2}},
	}}
	lf := s.LinkFilter(func() wire.Tick { return now })
	if lf == nil {
		t.Fatal("nil LinkFilter")
	}
	app := wire.Frame{Src: 1, Dst: 3, Payload: []byte{1}}
	if !lf(1, 3, app) {
		t.Error("partition must block frames crossing the boundary")
	}
	if lf(1, 2, app) || lf(3, 4, app) {
		t.Error("partition must not block frames inside either side")
	}
	now = 40
	if lf(1, 3, app) {
		t.Error("partition must deactivate outside the window")
	}
}

func TestLinkFilterWithholdAudit(t *testing.T) {
	now := wire.Tick(20)
	s := &Schedule{Faults: []Fault{
		{Kind: WithholdAudit, Start: 10, Duration: 20, Targets: []wire.RobotID{5}},
	}}
	lf := s.LinkFilter(func() wire.Tick { return now })
	resp := wire.AuditResponse{Auditor: 5, Auditee: 1, OK: true}
	auditFrame := wire.Frame{Src: 5, Dst: 1, Flags: wire.FlagAudit, Payload: resp.Encode()}
	if !lf(5, 1, auditFrame) {
		t.Error("withhold-audit must block the target's audit responses")
	}
	if lf(5, 1, wire.Frame{Src: 5, Dst: 1, Payload: []byte{1}}) {
		t.Error("withhold-audit must not block application frames")
	}
	if lf(3, 1, auditFrame) {
		t.Error("withhold-audit must not block other robots' responses")
	}
	now = 40
	if lf(5, 1, auditFrame) {
		t.Error("withhold must deactivate outside the window")
	}
}

func TestTxDelayDelaysAuditResponsesOnly(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: DelayAudit, Start: 10, Duration: 20, Targets: []wire.RobotID{4}, DelayTicks: 5},
	}}
	td := s.TxDelay(func() wire.Tick { return 15 })
	if td == nil {
		t.Fatal("nil TxDelay")
	}
	resp := wire.AuditResponse{Auditor: 4, Auditee: 1, OK: true}
	auditFrame := wire.Frame{Src: 4, Dst: 1, Flags: wire.FlagAudit, Payload: resp.Encode()}
	if got := td(4, auditFrame); got != 5 {
		t.Errorf("delay = %d, want 5", got)
	}
	if got := td(4, wire.Frame{Src: 4, Dst: 1, Payload: []byte{1}}); got != 0 {
		t.Errorf("app frame delayed by %d", got)
	}
	if got := td(3, auditFrame); got != 0 {
		t.Errorf("untargeted robot delayed by %d", got)
	}
}

func TestClockSkewAndDrift(t *testing.T) {
	now := wire.Tick(0)
	base := func() wire.Tick { return now }
	s := &Schedule{Faults: []Fault{
		{Kind: ClockSkew, Start: 100, Duration: 1024, Targets: []wire.RobotID{2}, OffsetTicks: -8, DriftPer1024: 512},
	}}
	if s.Clock(1, base) != nil {
		t.Error("untargeted robot must keep the engine clock (nil)")
	}
	clk := s.Clock(2, base)
	if clk == nil {
		t.Fatal("targeted robot got nil clock")
	}
	now = 50
	if got := clk(); got != 50 {
		t.Errorf("before the window: clock = %d, want 50", got)
	}
	now = 100
	if got := clk(); got != 92 {
		t.Errorf("at window start: clock = %d, want 92", got)
	}
	now = 612 // 512 ticks in: drift adds 512*512/1024 = 256
	if got := clk(); got != 612-8+256 {
		t.Errorf("mid-window: clock = %d, want %d", got, 612-8+256)
	}
	// A skew below zero clamps (wire.Tick is unsigned).
	neg := &Schedule{Faults: []Fault{
		{Kind: ClockSkew, Start: 0, Duration: 100, Targets: []wire.RobotID{2}, OffsetTicks: -1000},
	}}
	now = 10
	if got := neg.Clock(2, base)(); got != 0 {
		t.Errorf("negative clock must clamp to 0, got %d", got)
	}
}

func TestCrashTargetsAndEnvDisturbed(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: Crash, Start: 120, Targets: []wire.RobotID{4}},
		{Kind: Crash, Start: 90, Targets: []wire.RobotID{4, 7}},
		{Kind: LossBurst, Start: 60, Duration: 10, Rate: 0.5},
		{Kind: ClockSkew, Start: 150, Duration: 50, Targets: []wire.RobotID{1}},
	}}
	ct := s.CrashTargets()
	if ct[4] != 90 || ct[7] != 90 || len(ct) != 2 {
		t.Errorf("CrashTargets = %v", ct)
	}
	if _, ok := s.EnvDisturbedAt(50); ok {
		t.Error("nothing active or past at tick 50")
	}
	if at, ok := s.EnvDisturbedAt(80); !ok || at != 69 {
		t.Errorf("EnvDisturbedAt(80) = %d,%v; want 69 (burst end)", at, ok)
	}
	// Crashes disturb forever; clock skew never does.
	if at, ok := s.EnvDisturbedAt(500); !ok || at != 500 {
		t.Errorf("EnvDisturbedAt(500) = %d,%v; want 500 (crash ongoing)", at, ok)
	}
}

func TestScheduleDescribe(t *testing.T) {
	s := Generate(ProfileMixed, 5, allIDs(9), 240, Limits{TVal: 40, TAudit: 16})
	if len(s.Strings()) != len(s.Faults) {
		t.Fatal("Strings() length mismatch")
	}
	found := false
	for now := wire.Tick(0); now < 240; now++ {
		for _, d := range s.Describe(now) {
			found = true
			if !strings.Contains(d, "@[") {
				t.Errorf("Describe entry %q missing window", d)
			}
		}
	}
	if !found {
		t.Error("mixed schedule never active")
	}
}

package roborebound

import (
	"testing"

	"roborebound/internal/attack"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// attackScenario builds the §5.3 setup scaled down for unit-test
// speed: a protected flock with one robot compromised at t=15 s
// running the spoofing attack.
func attackScenario(protected bool, keepProtocol bool) FlockScenario {
	// Spacing matches the §5.3 arena density (25 robots in 100 m×100 m
	// ≈ 20 m pitch); at much tighter packing the spoof attack can
	// blind victims into physical collisions, which the paper's runs
	// did not exhibit.
	return FlockScenario{
		N:         9,
		Spacing:   20,
		Goal:      geom.V(220, 220),
		Protected: protected,
		Fmax:      2,
		Seed:      11,
		Compromised: []CompromisedSpec{{
			// Corner slot: once disabled, the attacker parks as an
			// invisible obstacle, so it must sit off the flock's
			// diagonal corridor (disabled robots stop broadcasting and
			// peers cannot see them — a physical-hazard reality the
			// paper sidesteps by spacing, §2.7).
			Index:        2,
			AtSeconds:    15,
			Strategy:     SpoofStrategy(150, 2, 1),
			KeepProtocol: keepProtocol,
		}},
	}
}

// TestBTICompromisedDisabledWithinTVal is the headline property: a
// misbehaving robot must be forced into Safe Mode within T_val of its
// first misbehavior (§3.10), and no correct robot may be disabled.
func TestBTICompromisedDisabledWithinTVal(t *testing.T) {
	for _, keepProtocol := range []bool{true, false} {
		s := attackScenario(true, keepProtocol).Build()
		s.RunSeconds(45)

		comp := s.Compromised(3) // index 2 → ID 3
		if comp == nil {
			t.Fatal("compromised robot not found")
		}
		if !comp.InSafeMode() {
			t.Fatalf("keepProtocol=%v: compromised robot still alive after 45s; stats %+v",
				keepProtocol, comp.Engine().Stats())
		}
		misbehavedAt, ok := comp.FirstMisbehaviorAt()
		if !ok {
			t.Fatalf("keepProtocol=%v: attacker never misbehaved", keepProtocol)
		}
		tval := s.Cfg.Core.TVal
		// BTI (§3.10): disabled within T_val of *first misbehavior*,
		// plus the audit-round granularity for the last pre-misbehavior
		// tokens to have been minted.
		deadline := misbehavedAt + tval + s.Cfg.Core.TAudit
		if got := comp.SafeModeAt(); got > deadline {
			t.Errorf("keepProtocol=%v: safe mode at tick %d, want ≤ %d (misbehaved %d + TVal %d)",
				keepProtocol, got, deadline, misbehavedAt, tval)
		} else {
			t.Logf("keepProtocol=%v: disabled %.2fs after first misbehavior (TVal=%.0fs)",
				keepProtocol, s.Seconds(comp.SafeModeAt()-misbehavedAt), s.Seconds(tval))
		}
		if bad := s.CorrectInSafeMode(); len(bad) != 0 {
			t.Errorf("keepProtocol=%v: correct robots disabled: %v", keepProtocol, bad)
		}
		if crashes := s.World.Crashes(); len(crashes) != 0 {
			t.Errorf("keepProtocol=%v: crashes under attack: %+v", keepProtocol, crashes)
		}
	}
}

// TestAttackWithoutDefensePersists: in the unprotected baseline the
// spoofer is never disabled and keeps the correct robots away from the
// goal (Fig. 8d/8e), while the defended run recovers (Fig. 9).
func TestAttackWithoutDefensePersists(t *testing.T) {
	goal := attackScenario(false, false).Goal

	undefended := attackScenario(false, false).Build()
	du := undefended.TrackDistances(goal)
	undefended.RunSeconds(150)

	defended := attackScenario(true, false).Build()
	dd := defended.TrackDistances(goal)
	defended.RunSeconds(150)

	if comp := undefended.Compromised(3); comp.InSafeMode() {
		t.Error("unprotected baseline has no safe-mode mechanism; who fired it?")
	}
	if comp := defended.Compromised(3); !comp.InSafeMode() {
		t.Fatal("defended run never disabled the attacker")
	}

	meanU := du.MeanFinalDistance(undefended.CorrectIDs())
	meanD := dd.MeanFinalDistance(defended.CorrectIDs())
	t.Logf("mean final distance to goal: undefended %.1f m, defended %.1f m", meanU, meanD)
	if meanD >= meanU {
		t.Errorf("defense should let the flock get closer: defended %.1f ≥ undefended %.1f", meanD, meanU)
	}
}

// TestSilentRobotDisabled: BTI also covers omission — a robot that
// simply stops participating loses its tokens and is disabled.
func TestSilentRobotDisabled(t *testing.T) {
	fs := attackScenario(true, false)
	fs.Compromised[0].Strategy = func([]wire.RobotID, geom.Vec2) attack.Strategy {
		return attack.Silent{}
	}
	s := fs.Build()
	s.RunSeconds(40)
	comp := s.Compromised(3)
	if !comp.InSafeMode() {
		t.Fatal("silent robot never disabled")
	}
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Errorf("correct robots disabled: %v", bad)
	}
}

// TestAuditDoSDoesNotKillCorrectRobots: a flooding attacker must not
// starve correct robots of audits. Note the flooder itself is *not*
// disabled: junk audit-flagged frames bypass logging by design (§3.4),
// so they are not replay-detectable misbehavior — the defense here is
// that auditors reject the junk cheaply and correct audits proceed.
func TestAuditDoSDoesNotKillCorrectRobots(t *testing.T) {
	fs := attackScenario(true, true)
	fs.Compromised[0].Strategy = func([]wire.RobotID, geom.Vec2) attack.Strategy {
		return &attack.AuditDoS{PerTick: 5}
	}
	s := fs.Build()
	s.RunSeconds(45)
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Errorf("audit DoS starved correct robots: %v", bad)
	}
	// The junk was seen and rejected by peers.
	refused := uint64(0)
	for _, id := range s.CorrectIDs() {
		refused += s.Robot(id).Engine().Stats().AuditsRefused
	}
	if refused == 0 {
		t.Error("no junk requests were refused; did the flood happen at all?")
	}
	// The flooder keeps otherwise behaving correctly, so it stays
	// alive — flooding alone is not BTI-detectable misbehavior.
	if s.Compromised(3).InSafeMode() {
		t.Log("note: flooder was disabled (acceptable but not required)")
	}
}

// TestRamAttackerDisabled: the rammer is disabled within the BTI
// window; with the paper-default spacing the victims brake/flee via
// the flocking repulsion, so no crash occurs before the kill switch.
func TestRamAttackerDisabled(t *testing.T) {
	fs := attackScenario(true, true)
	fs.Compromised[0].Strategy = func([]wire.RobotID, geom.Vec2) attack.Strategy {
		return attack.Ram{}
	}
	s := fs.Build()
	s.RunSeconds(45)
	if !s.Compromised(3).InSafeMode() {
		t.Fatal("rammer never disabled")
	}
	t.Logf("rammer disabled %.2fs after compromise; crashes: %d",
		s.Seconds(s.Compromised(3).SafeModeAt()-s.Tick(15)), len(s.World.Crashes()))
}

package roborebound

import (
	"strings"
	"testing"

	"roborebound/internal/geom"
)

func TestRenderAttackPanels(t *testing.T) {
	cfg := DefaultAttackRun()
	cfg.N = 9
	cfg.DurationSec = 40
	cfg.Protected = true
	res := RunAttack(cfg)

	trace := RenderAttackTrace("trace", res)
	if !strings.Contains(trace, "<svg") || !strings.Contains(trace, "<path") {
		t.Error("trace SVG malformed")
	}
	if !strings.Contains(trace, "#fed7d7") {
		t.Error("attack window not shaded")
	}

	final := RenderAttackFinal("final", cfg, res)
	if !strings.Contains(final, "<svg") {
		t.Error("final SVG malformed")
	}
	// 8 correct robots + keep-out ring.
	if got := strings.Count(final, "<circle"); got != 9 {
		t.Errorf("expected 9 circles (8 robots + ring), got %d", got)
	}
}

func TestRenderFig2Panel(t *testing.T) {
	cfg := Fig2Config{N: 9, NumCompromised: 1, SpacingM: 10,
		GoalX: 100, GoalY: 100, DurationSec: 20, Seed: 1}
	res := RunFig2(cfg, true)
	svg := RenderFig2Final("fig2", cfg, res, nil)
	if !strings.Contains(svg, "<svg") {
		t.Error("fig2 SVG malformed")
	}
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Errorf("expected 8 correct-robot circles, got %d", got)
	}
}

func TestSnapshotSimMarkers(t *testing.T) {
	s := attackScenario(true, false).Build()
	s.RunSeconds(40) // attacker disabled by now
	goal := geom.V(220, 220)
	svg := s.SnapshotSim("snapshot", &goal)
	if !strings.Contains(svg, "<svg") {
		t.Fatal("snapshot malformed")
	}
	// The disabled attacker gets the gray marker.
	if !strings.Contains(svg, `fill="#718096"`) {
		t.Error("disabled marker missing")
	}
	// Correct robots get the default blue.
	if !strings.Contains(svg, `fill="#2b6cb0"`) {
		t.Error("correct marker missing")
	}
}

func TestRobotLabel(t *testing.T) {
	cases := map[uint16]string{0: "r0", 7: "r7", 42: "r42", 1234: "r1234"}
	for in, want := range cases {
		if got := robotLabel(wireRobotID(in)); got != want {
			t.Errorf("robotLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

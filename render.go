package roborebound

import (
	"roborebound/internal/geom"
	"roborebound/internal/viz"
	"roborebound/internal/wire"
)

// SVG rendering of experiment results — the reproduction's versions of
// the paper's figure panels. Callers (the CLI's -svg flag) write the
// returned documents to disk.

// RenderAttackTrace renders the Fig. 8b/8d/9a panel: every correct
// robot's distance-to-goal trace with the attack-active window shaded.
func RenderAttackTrace(title string, res AttackRunResult) string {
	series := make(map[string][]float64, len(res.DistSeries))
	//rebound:nondet map-to-map rekey with distinct keys (one per robot); the renderer sorts labels before drawing
	for id, ys := range res.DistSeries {
		series[robotLabel(id)] = ys
	}
	return viz.RenderLinePlot(viz.LinePlot{
		Title:   title,
		XLabel:  "time (s)",
		YLabel:  "distance to goal (m)",
		X:       res.SampleTimesSec,
		Series:  series,
		ShadeX0: res.AttackActiveSec[0],
		ShadeX1: res.AttackActiveSec[1],
	})
}

// RenderAttackFinal renders the Fig. 8c/8e/9b panel: final positions
// with the goal and the attack's keep-out ring.
func RenderAttackFinal(title string, cfg AttackRunConfig, res AttackRunResult) string {
	goal := geom.V(cfg.GoalX, cfg.GoalY)
	robots := make(map[wire.RobotID]geom.Vec2, len(res.FinalPositions))
	//rebound:nondet map-to-map rekey with distinct keys (one per robot); the renderer iterates IDs in sorted order
	for id, p := range res.FinalPositions {
		robots[id] = geom.V(p[0], p[1])
	}
	keepOut := 0.0
	if !cfg.DisableAttack {
		keepOut = cfg.Z
	}
	return viz.RenderSnapshot(viz.Snapshot{
		Title:         title,
		Robots:        robots,
		Goal:          &goal,
		KeepOutRadius: keepOut,
	})
}

// RenderFig2Final renders a Fig. 2a/2b-style snapshot from a Fig. 2
// run.
func RenderFig2Final(title string, cfg Fig2Config, res Fig2Result, obstacles []geom.SphereObstacle) string {
	goal := geom.V(cfg.GoalX, cfg.GoalY)
	robots := make(map[wire.RobotID]geom.Vec2, len(res.FinalPositions))
	//rebound:nondet map-to-map rekey with distinct keys (one per robot); the renderer iterates IDs in sorted order
	for id, p := range res.FinalPositions {
		robots[id] = geom.V(p[0], p[1])
	}
	return viz.RenderSnapshot(viz.Snapshot{
		Title:     title,
		Robots:    robots,
		Goal:      &goal,
		Obstacles: obstacles,
	})
}

// SnapshotSim renders the live state of a simulation (markers reflect
// compromised/disabled/crashed status). Useful from examples and
// debugging sessions.
func (s *Sim) SnapshotSim(title string, goal *geom.Vec2) string {
	robots := make(map[wire.RobotID]geom.Vec2)
	markers := make(map[wire.RobotID]viz.Marker)
	for _, id := range s.IDs() {
		pos, ok := s.World.Position(id)
		if !ok {
			continue
		}
		robots[id] = pos
		switch {
		case s.World.Body(id).Crashed:
			markers[id] = viz.MarkerCrashed
		case s.robots[id].InSafeMode():
			markers[id] = viz.MarkerDisabled
		case s.Compromised(id) != nil:
			markers[id] = viz.MarkerCompromised
		}
	}
	var obstacles []geom.SphereObstacle
	for _, o := range s.Cfg.World.Obstacles {
		if so, ok := o.(geom.SphereObstacle); ok {
			obstacles = append(obstacles, so)
		}
	}
	return viz.RenderSnapshot(viz.Snapshot{
		Title:     title,
		Robots:    robots,
		Markers:   markers,
		Goal:      goal,
		Obstacles: obstacles,
	})
}

func robotLabel(id wire.RobotID) string {
	const digits = "0123456789"
	if id == 0 {
		return "r0"
	}
	var buf [8]byte
	i := len(buf)
	for v := int(id); v > 0; v /= 10 {
		i--
		buf[i] = digits[v%10]
	}
	return "r" + string(buf[i:])
}

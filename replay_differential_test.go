package roborebound

// replay_differential_test.go extends the spatial-index differential
// to the audit subsystem (satellite of the spatial-indexing PR): the
// tamper-evident logs every robot accumulates — entry streams, hash
// chains, checkpoints — must come out bit-for-bit identical whether
// radio delivery ran through the uniform grid or brute force, and the
// auditor's deterministic replay (§3.7) must accept either run's
// segments. A single reordered delivery would shift a chained recv
// entry and break both properties, so this is an end-to-end proof
// that the index preserves the protocol's audit semantics, not just
// its physics.

import (
	"bytes"
	"fmt"
	"testing"

	"roborebound/internal/auditlog"
	"roborebound/internal/core"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/replay"
	"roborebound/internal/wire"
)

// replayCell is one robot's auditable state at mission end: the
// serialized log segment plus everything needed to replay it.
type replayCell struct {
	blob []byte // canonical bytes: start checkpoint+tokens, entries, end checkpoint
	req  replay.Request
}

// collectSegments ends the mission the way the engine's own audit
// round does — flush both trusted-node chains into authenticators,
// snapshot the controller, checkpoint the log — and returns each
// robot's segment from its last covered checkpoint (or boot) to now.
func collectSegments(t *testing.T, s *Sim) map[wire.RobotID]replayCell {
	t.Helper()
	cells := make(map[wire.RobotID]replayCell)
	for _, id := range s.IDs() {
		r := s.Robot(id)
		authS, okS := r.SNode().MakeAuthenticator()
		authA, okA := r.ANode().MakeAuthenticator()
		if !okS || !okA {
			t.Fatalf("robot %d: trusted nodes keyless at mission end", id)
		}
		cp := auditlog.Checkpoint{
			Time:  authS.T,
			AuthS: authS,
			AuthA: authA,
			State: r.Controller().EncodeState(),
		}
		log := r.Engine().Log()
		log.AddCheckpoint(cp)
		seg, err := log.SegmentTo(cp.Hash())
		if err != nil {
			t.Fatalf("robot %d: %v", id, err)
		}
		if len(seg.Entries) == 0 {
			t.Fatalf("robot %d: empty log segment — the differential would be vacuous", id)
		}

		var blob bytes.Buffer
		if seg.FromBoot {
			blob.WriteByte(1)
		} else {
			blob.WriteByte(0)
			blob.Write(seg.Start.CP.Encode())
			for _, tok := range seg.Start.Tokens {
				blob.Write(tok.Encode())
			}
		}
		blob.Write(wire.EncodeLogEntries(seg.Entries))
		blob.Write(seg.End.Encode())

		req := replay.Request{
			Auditee:  id,
			ReqT:     authS.T, // a token request issued right now
			FromBoot: seg.FromBoot,
			End:      seg.End,
			Entries:  seg.Entries,
		}
		if !seg.FromBoot {
			start := seg.Start.CP
			req.Start = &start
		}
		cells[id] = replayCell{blob: blob.Bytes(), req: req}
	}
	return cells
}

// TestReplayDifferentialIndexOnOff runs the same protected flock
// twice, spatial index off and on, and asserts per robot that
//
//   - the full auditable state (covered start checkpoint + tokens,
//     retained entry stream, end checkpoint with both chain
//     authenticators and the controller state snapshot) is
//     bit-for-bit identical across the two runs, and
//   - the auditor's deterministic replay accepts the segment, i.e.
//     each run's logged outputs are byte-for-byte what a replica of
//     the controller produces from the logged inputs.
//
// Covered checkpoints only exist because real audit rounds succeeded
// mid-mission, so the differential spans token grants and log
// truncations, not just entry appends.
func TestReplayDifferentialIndexOnOff(t *testing.T) {
	seeds := []uint64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const (
		tps     = 4.0
		spacing = 12.0
	)
	goal := geom.V(150, 150)

	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var cells [2]map[wire.RobotID]replayCell
			var verify [2]func(wire.Authenticator) bool
			for i, indexed := range []bool{false, true} {
				fs := FlockScenario{
					N:            9,
					Spacing:      spacing,
					Goal:         goal,
					Protected:    true,
					Seed:         seed,
					JitterM:      2,
					SpatialIndex: indexed,
				}
				s := fs.Build()
				s.RunSeconds(40)
				cells[i] = collectSegments(t, s)
				// The auditor verifies authenticator MACs on its own
				// trusted hardware; any peer's a-node serves.
				verify[i] = s.Robot(1).ANode().CheckAuthenticator
			}

			brute, indexed := cells[0], cells[1]
			if len(brute) != len(indexed) {
				t.Fatalf("robot counts differ: %d vs %d", len(brute), len(indexed))
			}

			// The verifier config mirrors what FlockScenario.Build
			// installs in every engine.
			cc := core.DefaultConfig(tps)
			factory := flocking.Factory{Params: flocking.DefaultParams(tps, spacing, goal)}

			for id, b := range brute {
				ix, ok := indexed[id]
				if !ok {
					t.Fatalf("robot %d only in the brute run", id)
				}
				if !bytes.Equal(b.blob, ix.blob) {
					t.Errorf("robot %d: auditable state diverges between brute and indexed runs (%d vs %d bytes)",
						id, len(b.blob), len(ix.blob))
				}
				for side, cell := range map[string]replayCell{"brute": b, "indexed": ix} {
					cfg := replay.Config{
						Factory:            factory,
						BatchSize:          cc.BatchSize,
						AuthSlack:          cc.AuthSlack,
						CheckAuthenticator: verify[map[string]int{"brute": 0, "indexed": 1}[side]],
					}
					if err := replay.Verify(cell.req, cfg); err != nil {
						t.Errorf("robot %d: %s run's log rejected by auditor replay: %v", id, side, err)
					}
				}
			}
		})
	}
}

package roborebound

// Swarm-scale hot-path benchmarks: radio delivery and collision
// detection at 100–500 robots, brute-force vs spatially indexed.
// `make bench-scale` records them into the committed BENCH_scale.json;
// CI's bench gate (`make bench-gate`) re-runs the pairs and asserts
// the indexed Deliver and collision paths stay ≥5× faster than brute
// at N=500 — a machine-independent within-run ratio, so the gate
// doesn't flake on slow runners the way absolute ns/op would.

import (
	"fmt"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/radio"
	"roborebound/internal/sim"
	"roborebound/internal/wire"
)

// benchScaleDeliver measures one radio round at swarm scale: every
// robot broadcasts a state-sized frame, then Deliver fans out. The
// layout is the paper's 64 m grid, where a 500-robot swarm spans
// ~1.4 km and each robot decodes only its ~8 nearest neighbors — the
// regime the index exists for.
func benchScaleDeliver(b *testing.B, n int, indexed bool) {
	params := radio.DefaultParams()
	params.SpatialIndex = indexed
	positions := GridPositions(n, 64, geom.V(0, 0))
	pos := func(id wire.RobotID) (geom.Vec2, bool) {
		i := int(id) - 1
		if i < 0 || i >= len(positions) {
			return geom.Vec2{}, false
		}
		return positions[i], true
	}
	m := radio.NewMedium(params, pos, 1)
	ids := make([]wire.RobotID, n)
	for i := range ids {
		ids[i] = wire.RobotID(i + 1)
	}
	payload := make([]byte, wire.StateMsgSize)
	var delivered int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			m.Send(id, wire.Frame{Src: id, Dst: wire.Broadcast, Payload: payload})
		}
		delivered += len(m.Deliver(ids))
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "deliveries/round")
}

func BenchmarkScale_Deliver_Brute_N100(b *testing.B)   { benchScaleDeliver(b, 100, false) }
func BenchmarkScale_Deliver_Indexed_N100(b *testing.B) { benchScaleDeliver(b, 100, true) }
func BenchmarkScale_Deliver_Brute_N500(b *testing.B)   { benchScaleDeliver(b, 500, false) }
func BenchmarkScale_Deliver_Indexed_N500(b *testing.B) { benchScaleDeliver(b, 500, true) }

// benchScaleCollision measures one physics tick at swarm scale. With
// static, well-separated bodies the integration loop is O(n) and the
// pair scan dominates: brute force visits n(n−1)/2 pairs, the grid a
// handful of neighbors per body.
func benchScaleCollision(b *testing.B, n int, indexed bool) {
	cfg := sim.DefaultWorldConfig()
	cfg.SpatialIndex = indexed
	w := sim.NewWorld(cfg)
	for i, p := range GridPositions(n, 64, geom.V(0, 0)) {
		w.AddBody(wire.RobotID(i+1), p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(wire.Tick(i))
	}
	if len(w.Crashes()) != 0 {
		b.Fatal("benchmark layout should be crash-free")
	}
}

func BenchmarkScale_Collision_Brute_N100(b *testing.B)   { benchScaleCollision(b, 100, false) }
func BenchmarkScale_Collision_Indexed_N100(b *testing.B) { benchScaleCollision(b, 100, true) }
func BenchmarkScale_Collision_Brute_N500(b *testing.B)   { benchScaleCollision(b, 500, false) }
func BenchmarkScale_Collision_Indexed_N500(b *testing.B) { benchScaleCollision(b, 500, true) }

// benchScaleSim runs a whole protected chaos cell at swarm scale, so
// BENCH_scale.json also records what the index buys end to end (the
// protocol engine dilutes the hot-path win; that context belongs next
// to the headline numbers).
func benchScaleSim(b *testing.B, indexed bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunChaos(ChaosConfig{
			Controller:   "flocking",
			Profile:      faultinject.ProfileNone,
			Seed:         1,
			N:            300,
			DurationSec:  8,
			SpacingM:     64,
			SpatialIndex: indexed,
		})
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
	}
}

func BenchmarkScale_Sim_Brute_N300(b *testing.B)   { benchScaleSim(b, false) }
func BenchmarkScale_Sim_Indexed_N300(b *testing.B) { benchScaleSim(b, true) }

// TestScaleBenchLayoutHasNeighbors guards the benchmark setup itself:
// at 64 m spacing every robot must decode at least its grid neighbors,
// or the Deliver benchmarks would be measuring silence.
func TestScaleBenchLayoutHasNeighbors(t *testing.T) {
	params := radio.DefaultParams()
	positions := GridPositions(100, 64, geom.V(0, 0))
	r := params.RangeM()
	if positions[1].Sub(positions[0]).Norm() >= r {
		t.Fatalf("grid pitch %.0fm exceeds decode range %.1fm", 64.0, r)
	}
	if fmt.Sprintf("%.0f", r) == "0" {
		t.Fatal("degenerate decode range")
	}
}

package roborebound

import (
	"testing"
	"time"

	"roborebound/internal/obs"
)

// TestScaleSweepDifferential runs a small differential scale sweep and
// checks the pairing/comparison machinery end to end: brute and
// indexed runs of the same size must produce identical fingerprints
// and metrics snapshots, and points must pair up in input order.
func TestScaleSweepDifferential(t *testing.T) {
	sizes := []int{20, 35}
	dur := 6.0
	if testing.Short() {
		sizes = []int{16}
		dur = 3
	}
	pts := RunScaleSweep(ScaleConfig{
		Sizes:        sizes,
		DurationSec:  dur,
		Seed:         7,
		Differential: true,
		Workers:      0,
	})
	if len(pts) != 2*len(sizes) {
		t.Fatalf("got %d points, want %d", len(pts), 2*len(sizes))
	}
	cmps := CompareScalePoints(pts)
	if len(cmps) != len(sizes) {
		t.Fatalf("got %d comparisons, want %d", len(cmps), len(sizes))
	}
	for _, c := range cmps {
		if !c.FingerprintMatch {
			t.Errorf("N=%d: fingerprints diverge:\nbrute:   %s\nindexed: %s",
				c.N, c.Brute.Result.Metrics.Fingerprint, c.Indexed.Result.Metrics.Fingerprint)
		}
		if !c.MetricsMatch {
			t.Errorf("N=%d: metrics snapshots diverge", c.N)
		}
		if c.Brute.Indexed || !c.Indexed.Indexed {
			t.Errorf("N=%d: comparison paired wrong points", c.N)
		}
		if c.Brute.Elapsed <= 0 || c.Indexed.Elapsed <= 0 {
			t.Errorf("N=%d: missing elapsed telemetry (%v, %v)", c.N, c.BruteElapsed, c.IndexedElapsed)
		}
	}
}

// TestScaleSweepNonDifferential: without Differential only indexed
// points come back, and nothing pairs.
func TestScaleSweepNonDifferential(t *testing.T) {
	pts := RunScaleSweep(ScaleConfig{Sizes: []int{12}, DurationSec: 2, Seed: 3})
	if len(pts) != 1 || !pts[0].Indexed {
		t.Fatalf("points: %+v", pts)
	}
	if cmps := CompareScalePoints(pts); len(cmps) != 0 {
		t.Fatalf("unexpected comparisons: %+v", cmps)
	}
}

func TestScaleConfigDefaults(t *testing.T) {
	c := ScaleConfig{}.withDefaults()
	if len(c.Sizes) != 3 || c.Sizes[2] != 500 {
		t.Errorf("default sizes: %v", c.Sizes)
	}
	if c.DurationSec != 20 || c.SpacingM != 64 || c.Controller != "flocking" {
		t.Errorf("defaults: %+v", c)
	}
}

func TestCompareScalePointsSpeedup(t *testing.T) {
	pts := []ScalePoint{
		{N: 5, Indexed: false, Elapsed: 10 * time.Second},
		{N: 5, Indexed: true, Elapsed: 2 * time.Second},
	}
	cmps := CompareScalePoints(pts)
	if len(cmps) != 1 || cmps[0].Speedup != 5 {
		t.Fatalf("comparisons: %+v", cmps)
	}
}

func TestSamplesEqual(t *testing.T) {
	a := []obs.Sample{{Name: "x", Value: 1}}
	if !samplesEqual(a, []obs.Sample{{Name: "x", Value: 1}}) {
		t.Error("equal snapshots compared unequal")
	}
	if samplesEqual(a, []obs.Sample{{Name: "x", Value: 2}}) ||
		samplesEqual(a, []obs.Sample{{Name: "y", Value: 1}}) ||
		samplesEqual(a, nil) {
		t.Error("unequal snapshots compared equal")
	}
}

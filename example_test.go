package roborebound_test

import (
	"fmt"

	rr "roborebound"
	"roborebound/internal/geom"
)

// Testable godoc examples. Simulations are deterministic per seed, so
// their output is stable enough to pin.

// Example demonstrates the smallest end-to-end use of the public API:
// build a protected flock, run it, confirm nobody was disabled.
func Example() {
	sim := rr.FlockScenario{
		N:         9,
		Spacing:   4,
		Goal:      geom.V(120, 120),
		Protected: true,
		Fmax:      2,
		Seed:      7,
	}.Build()
	sim.RunSeconds(30)

	fmt.Println("robots:", len(sim.IDs()))
	fmt.Println("correct robots disabled:", len(sim.CorrectInSafeMode()))
	fmt.Println("crashes:", len(sim.World.Crashes()))
	// Output:
	// robots: 9
	// correct robots disabled: 0
	// crashes: 0
}

// ExampleFlockScenario_attack shows the paper's §5.3 experiment in
// miniature: a spoofing attacker is audited into Safe Mode while the
// correct robots stay alive.
func ExampleFlockScenario_attack() {
	sim := rr.FlockScenario{
		N:         9,
		Spacing:   20,
		Goal:      geom.V(220, 220),
		Protected: true,
		Fmax:      2,
		Seed:      11,
		Compromised: []rr.CompromisedSpec{{
			Index:        2,
			AtSeconds:    15,
			Strategy:     rr.SpoofStrategy(150, 2, 1),
			KeepProtocol: true,
		}},
	}.Build()
	sim.RunSeconds(45)

	comp := sim.Compromised(3)
	fmt.Println("attacker disabled:", comp.InSafeMode())
	fmt.Println("correct robots disabled:", len(sim.CorrectInSafeMode()))
	// Output:
	// attacker disabled: true
	// correct robots disabled: 0
}

// ExampleGridPositions shows the square-grid placement used throughout
// the paper's evaluation.
func ExampleGridPositions() {
	for _, p := range rr.GridPositions(4, 10, geom.V(0, 0)) {
		fmt.Printf("(%.0f,%.0f) ", p.X, p.Y)
	}
	fmt.Println()
	// Output:
	// (0,0) (10,0) (0,10) (10,10)
}

// ExampleTable1 regenerates the paper's worst-case a-node load model
// with its own measured per-op costs.
func ExampleTable1() {
	rows := rr.Table1(rr.PaperRateConfig(), rr.PaperCostModel())
	total := rows[len(rows)-1]
	fmt.Printf("a-node worst-case load: %.1f%% (paper: 17.28%%)\n", total.LoadPct)
	// Output:
	// a-node worst-case load: 18.0% (paper: 17.28%)
}

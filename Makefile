GO ?= go

.PHONY: all build vet test race ci bench fmt-check

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages plus the
# facade's parallel-sweep determinism and isolation tests.
race:
	$(GO) test -race ./internal/runner ./internal/sim ./internal/radio
	$(GO) test -race -run 'ParallelSweep|CellIsolation|SweepProgress' .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt-check vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

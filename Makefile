GO ?= go

.PHONY: all build vet lint test race ci bench bench-all bench-scale bench-swarm bench-perf bench-serve bench-gate fmt-check cover chaos-smoke scale-smoke swarm-smoke snapshot-smoke perf-smoke serve-smoke fuzz-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus reboundlint, the repository's own
# analyzer suite (determinism, trustedboundary, clockdomain,
# snapshotstate, shardsafety, hotpath — see DESIGN.md "Static
# analysis & determinism contracts"). Fails on any violation;
# legitimate exceptions carry a justified //rebound: annotation, and
# a hatch that no longer suppresses anything is itself a violation
# (the annotation audit keeps the exception list honest). Machine
# consumers: `go run ./cmd/reboundlint -json ./...`.
lint: vet
	$(GO) run ./cmd/reboundlint ./...

# -shuffle=on randomizes test (and subtest) execution order each run,
# flushing out order-dependent tests; the chosen seed is printed so a
# failure is reproducible with -shuffle=N.
test:
	$(GO) test -shuffle=on ./...

# Race-detector pass over the whole module. Most packages are
# single-goroutine and cheap under -race; the runner/sweep tests are
# the ones that genuinely exercise concurrency.
race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt-check lint build test race

# The observability benchmark suite, recorded to the committed
# BENCH_obs.json (name -> ns/op, allocs/op, ...): the obs package's
# micro benches (emit paths, registry), the serial-vs-parallel sweep
# pair, and the whole-simulation tracer-overhead pair. The sim-level
# benches run one iteration (-benchtime 1x) to keep this target in
# seconds; the micro benches use the default benchtime for stable
# numbers. benchjson sorts everything, so reruns diff cleanly.
bench:
	@{ $(GO) test -run '^$$' -bench . -benchmem ./internal/obs/ && \
	   $(GO) test -run '^$$' -bench 'BenchmarkObs_|BenchmarkSweep_' -benchtime 1x -benchmem . ; } \
	  | $(GO) run ./cmd/benchjson -o BENCH_obs.json
	@cat BENCH_obs.json

# Every benchmark in the module at full benchtime (minutes).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# The swarm-scale hot-path suite (radio delivery and collision
# detection at 100-500 robots, brute vs indexed, plus the end-to-end
# N=300 sim pair), recorded to the committed BENCH_scale.json.
bench-scale:
	@$(GO) test -run '^$$' -bench 'BenchmarkScale_' -benchmem -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o BENCH_scale.json
	@cat BENCH_scale.json

# The protocol-plane swarm suite: the audit-serve pair (where the
# >=5x contract lives), the loopback protocol pair, the chain
# append/flush micro pair, and the end-to-end N=1000 sim trio
# (reference / fast / fast-sharded), recorded to the committed
# BENCH_swarm.json.
bench-swarm:
	@$(GO) test -run '^$$' -bench 'BenchmarkSwarm_' -benchmem -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o BENCH_swarm.json
	@cat BENCH_swarm.json

# The wall-clock performance-plane suite: the perf package's Start/End
# micro pair (disabled vs enabled instrumentation), the end-to-end
# Sim_Off/Sim_On pair (the same chaos cell untimed vs fully
# instrumented — absolute numbers for the committed baseline), and the
# paired Sim_Overhead benchmark, which interleaves off/on cells in an
# ABBA schedule and reports the overhead percentage directly. All
# recorded to the committed BENCH_perf.json.
bench-perf:
	@{ $(GO) test -run '^$$' -bench 'BenchmarkPerf_' -benchmem ./internal/obs/perf/ && \
	   $(GO) test -run '^$$' -bench 'BenchmarkPerf_Sim_(Off|On)$$' -benchtime 3x -benchmem -timeout 30m . && \
	   $(GO) test -run '^$$' -bench 'BenchmarkPerf_Sim_Overhead' -benchtime 6x -timeout 30m . ; } \
	  | $(GO) run ./cmd/benchjson -o BENCH_perf.json
	@cat BENCH_perf.json

# The serving-layer load suite: BenchmarkServe_Load drives 1000
# concurrent sessions over real HTTP against an in-process server
# (8 tenants, fair-share scheduler) and reports throughput plus
# queue-wait / service / end-to-end latency percentiles, recorded to
# the committed BENCH_serve.json.
bench-serve:
	@$(GO) test -run '^$$' -bench 'BenchmarkServe_Load' -benchtime 1x -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o BENCH_serve.json
	@cat BENCH_serve.json

# Re-run the hot-path pairs and enforce the speedup contracts: the
# spatially indexed Deliver and collision paths must stay >=5x faster
# than brute force at N=500, the fast protocol plane must serve an
# audit round >=5x faster than the reference plane, and the streaming
# chain must beat the buffered reference. Ratios compare two numbers
# from the same run on the same machine, so the gates hold on any
# runner; the committed-baseline comparisons are a coarse backstop
# (generous tolerance) against order-of-magnitude regressions
# slipping through. The perf stanza caps the wall-clock perf plane's
# whole-sim overhead at 3%, measured by the paired interleaved
# benchmark (see bench_perf_test.go) so runner noise cancels instead
# of dominating the 3% effect. The serve stanza enforces the serving
# layer's load contract: >=1000 concurrent sessions completing with
# zero errors (see bench_serve_test.go).
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkScale_(Deliver|Collision)' -benchmem -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o /dev/null \
	      -baseline BENCH_scale.json -tolerance 3.0 \
	      -minratio 'BenchmarkScale_Deliver_Brute_N500/BenchmarkScale_Deliver_Indexed_N500>=5' \
	      -minratio 'BenchmarkScale_Collision_Brute_N500/BenchmarkScale_Collision_Indexed_N500>=5'
	$(GO) test -run '^$$' -bench 'BenchmarkSwarm_(Audit|Chain)' -benchmem -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o /dev/null \
	      -baseline BENCH_swarm.json -tolerance 3.0 \
	      -minratio 'BenchmarkSwarm_Audit_Reference/BenchmarkSwarm_Audit_Fast>=5' \
	      -minratio 'BenchmarkSwarm_Chain_Buffered/BenchmarkSwarm_Chain_Streaming>=1.5'
	$(GO) test -run '^$$' -bench 'BenchmarkPerf_Sim_Overhead' -benchtime 6x -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o /dev/null \
	      -maxmetric 'BenchmarkPerf_Sim_Overhead:overhead_pct<=3'
	$(GO) test -run '^$$' -bench 'BenchmarkServe_Load' -benchtime 1x -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -o /dev/null \
	      -minmetric 'BenchmarkServe_Load:sessions>=1000' \
	      -maxmetric 'BenchmarkServe_Load:errors<=0'

# Coverage over every package, with a per-function summary and an HTML
# report CI uploads as an artifact.
cover:
	$(GO) test -shuffle=on -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	$(GO) tool cover -html=coverage.out -o coverage.html

# The cross-seed fault-injection soak (reduced seed block): every
# controller x every fault profile, invariant-checked every tick.
# Exits nonzero on any violation. Alongside the verdict table it
# leaves the observability artifacts CI uploads: the soak's summed
# metrics snapshot and any violating cell's flight-recorder dump,
# plus a full event log + Perfetto trace of one instrumented cell.
chaos-smoke:
	$(GO) run ./cmd/roborebound -quick -progress=false \
	  -metrics obs-chaos-metrics.json -events obs-chaos-violations.ndjson chaos
	$(GO) run ./cmd/roborebound -quick -progress=false \
	  -events obs-events.ndjson -perfetto obs-trace.json -metrics obs-metrics.json trace flocking

# The swarm-scale differential smoke: one 300-robot cell run twice,
# brute-force and spatially indexed, asserting byte-identical chaos
# fingerprints and metrics snapshots (and no invariant violations).
# Exits nonzero on any divergence.
scale-smoke:
	$(GO) run ./cmd/roborebound -quick -progress=false scale

# The protocol-plane differential smoke: one 1000-robot chaos cell run
# on the reference, fast, and fast-sharded planes, asserting
# byte-identical chaos fingerprints and metrics snapshots (and no
# invariant violations). Exits nonzero on any divergence.
swarm-smoke:
	$(GO) run ./cmd/roborebound -quick -progress=false swarm

# The snapshot/resume differential smoke: capture a 300-robot chaos
# cell at its midpoint under the spatial index, then resume it on the
# plain pipeline with -verify, which re-runs the cell uninterrupted
# and exits nonzero unless fingerprints and metrics are
# byte-identical. One command covers the envelope codecs, the config
# echo, and cross-accelerator resume at production scale.
snapshot-smoke:
	$(GO) run ./cmd/roborebound -progress=false -spatial \
	  -controller flocking -profile mixed -n 300 -duration 20 \
	  -o snapshot-cell.rbsn snapshot
	$(GO) run ./cmd/roborebound -progress=false \
	  -from snapshot-cell.rbsn -verify resume

# The performance-plane smoke: one 300-robot sharded spatial chaos
# cell run twice by the perf subcommand — untimed, then with the full
# wall-clock plane attached (phase timer, runtime sampler) — printing
# the phase-attributed timing table and runtime telemetry, and exiting
# nonzero unless the two runs are byte-identical (fingerprint and
# metrics snapshot). Every perf report doubles as an observation-only
# proof at production scale.
perf-smoke:
	$(GO) run ./cmd/roborebound -progress=false -spatial \
	  -controller flocking -profile mixed -n 300 -duration 20 -shards 4 perf

# The serving-layer smoke: the HTTP≡facade selftest submits one job of
# every kind over real HTTP to an ephemeral loopback server and
# byte-compares results and artifacts (raw and chunked) against the
# direct facade path, exiting nonzero on any divergence.
serve-smoke:
	$(GO) run ./cmd/roborebound -progress=false -selftest serve

# Short fuzz pass over each fuzz target (seed corpora always run as
# part of `make test`; this explores beyond them).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzFrameRoundTrip -fuzztime=20s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDecoders -fuzztime=20s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzFragmentRoundTrip -fuzztime=20s ./internal/radio
	$(GO) test -run=NONE -fuzz=FuzzReassembler -fuzztime=20s ./internal/radio
	$(GO) test -run=NONE -fuzz=FuzzDecodeCheckpoint -fuzztime=20s ./internal/auditlog
	$(GO) test -run=NONE -fuzz=FuzzSnapshotDecode -fuzztime=20s ./internal/snapshot
	$(GO) test -run=NONE -fuzz=FuzzJobRequestDecode -fuzztime=20s ./internal/serve
	$(GO) test -run=NONE -fuzz=FuzzArtifactChunkReassembly -fuzztime=20s ./internal/serve
